(* A MiniSat-style CDCL solver.

   Conventions:
   - assignment per variable: -1 unassigned, 1 true, 0 false;
   - a literal l is true iff its variable is assigned to [sign l];
   - clauses are int arrays of literals. The literal array is
     IMMUTABLE once the clause is built: the two watched literals are
     the [w0]/[w1] fields (literal values, not indices), so
     propagation never writes into [lits]. This is what makes
     {!clone} cheap — clones share the literal arrays and only carry
     their own clause records (watch fields, activity);
   - watch lists are indexed by the literal that must become FALSE for
     the clause to need attention (i.e. clause c watches lit p via the
     list of [Lit.neg p]); clause [c] sits in [watches.(c.w0)] and
     [watches.(c.w1)], exactly. *)

type clause = {
  lits : int array;  (* immutable; shared between clones *)
  mutable w0 : int;  (* watched literal values; w0 <> w1 *)
  mutable w1 : int;
  mutable activity : float;
  mutable removed : bool;
}

(* Growable vector of clauses / ints. *)
module Vec = struct
  type 'a t = {
    mutable data : 'a array;
    mutable size : int;
    dummy : 'a;
  }

  let create dummy = { data = Array.make 16 dummy; size = 0; dummy }

  let push v x =
    if v.size = Array.length v.data then begin
      let data = Array.make (2 * Array.length v.data) v.dummy in
      Array.blit v.data 0 data 0 v.size;
      v.data <- data
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let shrink v n = v.size <- n
  let copy v = { data = Array.copy v.data; size = v.size; dummy = v.dummy }
end

type t = {
  (* clause database *)
  clauses : clause Vec.t;  (* problem clauses *)
  learnts : clause Vec.t;
  (* watches.(lit) = clauses that must be inspected when [lit] becomes
     false. *)
  mutable watches : clause Vec.t array;
  (* assignment *)
  mutable assign : int array;  (* var -> -1/0/1 *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;
  trail : int Vec.t;  (* literals in assignment order *)
  trail_lim : int Vec.t;  (* decision-level boundaries in trail *)
  mutable qhead : int;
  (* branching *)
  mutable activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable heap : int array;  (* binary max-heap of vars *)
  mutable heap_size : int;
  mutable heap_pos : int array;  (* var -> index in heap, -1 if absent *)
  mutable seen : bool array;
  mutable nvars : int;
  mutable ok : bool;  (* false once the clause set is unsat at level 0 *)
  (* learnt-database reduction threshold: once the learnt count
     exceeds it, the low-activity half is dropped at the next restart
     and the threshold grows geometrically (bounded growth, not
     unbounded accumulation). <= 0 means "not sized yet": the first
     solve derives it from the problem size. *)
  mutable max_learnts : float;
  mutable conflict_core : int list;  (* assumption literals of the last final conflict *)
  (* assumptions of the last solve, for prefix trail reuse: a Sat
     answer leaves the trail in place, and the next solve resumes from
     the longest shared assumption prefix instead of level 0 *)
  mutable last_assumps : int array;
  (* cooperative interruption: set from another domain, checked at the
     top of the CDCL loop *)
  stop : bool Atomic.t;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_reduces : int;
  mutable n_learnt_total : int;  (* learnt clauses ever recorded *)
  mutable n_solves : int;
  mutable solve_time : float;  (* wall seconds spent inside [solve] *)
  (* phase saving: assignments overwriting the saved polarity *)
  mutable n_phase_flips : int;
  (* literals removed from learnt clauses by recursive minimization *)
  mutable n_minimized : int;
}

let dummy_clause = { lits = [||]; w0 = 0; w1 = 0; activity = 0.0; removed = false }

let create () =
  {
    clauses = Vec.create dummy_clause;
    learnts = Vec.create dummy_clause;
    watches = Array.init 2 (fun _ -> Vec.create dummy_clause);
    assign = Array.make 1 (-1);
    level = Array.make 1 (-1);
    reason = Array.make 1 None;
    phase = Array.make 1 false;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    activity = Array.make 1 0.0;
    var_inc = 1.0;
    cla_inc = 1.0;
    heap = Array.make 1 0;
    heap_size = 0;
    heap_pos = Array.make 1 (-1);
    seen = Array.make 1 false;
    nvars = 0;
    ok = true;
    max_learnts = 0.0;
    conflict_core = [];
    last_assumps = [||];
    stop = Atomic.make false;
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_reduces = 0;
    n_learnt_total = 0;
    n_solves = 0;
    solve_time = 0.0;
    n_phase_flips = 0;
    n_minimized = 0;
  }

let nb_vars s = s.nvars
let nb_clauses s = Vec.size s.clauses

(* ----------------------------------------------------------------- *)
(* Heap of variables ordered by activity                               *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_lt s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_lt s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let top = s.heap.(0) in
  s.heap_pos.(top) <- -1;
  s.heap_size <- s.heap_size - 1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  top

let heap_decrease s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ----------------------------------------------------------------- *)
(* Variables                                                           *)

let grow_array arr n dummy =
  let len = Array.length arr in
  if n <= len then arr
  else begin
    let arr' = Array.make (max n (2 * len)) dummy in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign (v + 1) (-1);
  s.level <- grow_array s.level (v + 1) (-1);
  s.reason <- grow_array s.reason (v + 1) None;
  s.phase <- grow_array s.phase (v + 1) false;
  s.activity <- grow_array s.activity (v + 1) 0.0;
  s.heap <- grow_array s.heap (v + 1) 0;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.seen <- grow_array s.seen (v + 1) false;
  let nlits = 2 * (v + 1) in
  if Array.length s.watches < nlits then begin
    let watches = Array.init (max nlits (2 * Array.length s.watches)) (fun i ->
        if i < Array.length s.watches then s.watches.(i) else Vec.create dummy_clause)
    in
    s.watches <- watches
  end;
  s.assign.(v) <- -1;
  s.level.(v) <- -1;
  s.reason.(v) <- None;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

(* ----------------------------------------------------------------- *)
(* Assignment                                                          *)

let lit_is_true s l = s.assign.(Lit.var l) = (if Lit.sign l then 1 else 0)
let lit_is_false s l = s.assign.(Lit.var l) = (if Lit.sign l then 0 else 1)
let lit_is_unassigned s l = s.assign.(Lit.var l) = -1
let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.sign l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  if s.phase.(v) <> Lit.sign l then s.n_phase_flips <- s.n_phase_flips + 1;
  s.phase.(v) <- Lit.sign l;
  Vec.push s.trail l;
  s.n_propagations <- s.n_propagations + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      s.level.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* ----------------------------------------------------------------- *)
(* Propagation                                                         *)

exception Conflict of clause
exception Interrupted

(* Propagate all enqueued facts; raise [Conflict] on a falsified
   clause.

   The cooperative stop flag is polled here too, between propagation
   waves (every 64 trail positions): a cube-enumeration or portfolio
   loser whose solve is deep inside one long propagation run must
   still stop within a bounded number of enqueues, not only at the
   next decision boundary. The check sits before the wave's watch
   lists are touched, so an [Interrupted] raised here leaves every
   watch list consistent (the pending literal simply stays queued);
   the flag itself is left set — [solve] owns consuming it. *)
let propagate s =
  while s.qhead < Vec.size s.trail do
    if s.qhead land 63 = 0 && Atomic.get s.stop then raise Interrupted;
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    (* p just became true: visit clauses watching ¬p. *)
    let false_lit = Lit.neg p in
    let ws = s.watches.(false_lit) in
    let n = Vec.size ws in
    let kept = ref 0 in
    (try
       for i = 0 to n - 1 do
         let c = Vec.get ws i in
         (* Normalize: the false literal in w1. *)
         if c.w0 = false_lit then begin
           c.w0 <- c.w1;
           c.w1 <- false_lit
         end;
         if lit_is_true s c.w0 then begin
           (* Clause already satisfied: keep the watch. *)
           Vec.set ws !kept c;
           incr kept
         end
         else begin
           (* Look for a new literal to watch; [lits] is never written
              (watch state lives in w0/w1), so the scan may cross the
              current watches — skip w0 explicitly, and false_lit is
              excluded by being false. *)
           let lits = c.lits in
           let len = Array.length lits in
           let found = ref false in
           let j = ref 0 in
           while (not !found) && !j < len do
             let l = lits.(!j) in
             if l <> c.w0 && not (lit_is_false s l) then begin
               c.w1 <- l;
               Vec.push s.watches.(l) c;
               found := true
             end;
             incr j
           done;
           if not !found then begin
             (* Unit or conflicting. *)
             Vec.set ws !kept c;
             incr kept;
             if lit_is_false s c.w0 then begin
               (* Conflict: keep remaining watches before raising. *)
               for k = i + 1 to n - 1 do
                 Vec.set ws !kept (Vec.get ws k);
                 incr kept
               done;
               Vec.shrink ws !kept;
               raise (Conflict c)
             end
             else enqueue s c.w0 (Some c)
           end
         end
       done;
       Vec.shrink ws !kept
     with Conflict _ as e -> raise e)
  done

(* ----------------------------------------------------------------- *)
(* Activity                                                            *)

let var_decay = 0.95
let clause_decay = 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_decrease s v

let decay_activities s =
  s.var_inc <- s.var_inc /. var_decay;
  s.cla_inc <- s.cla_inc /. clause_decay

let bump_clause s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then c.activity <- c.activity *. 1e-20

(* ----------------------------------------------------------------- *)
(* Clause attachment                                                   *)

let attach_clause s c =
  Vec.push s.watches.(c.w0) c;
  Vec.push s.watches.(c.w1) c

let add_clause s lits =
  if s.ok then begin
    (* Clauses are always added at the root level; a previous [solve]
       may have left the trail at a positive decision level. *)
    cancel_until s 0;
    (* Normalize: sort, merge duplicates, drop tautologies and
       level-0-false literals, detect satisfied clauses. *)
    let lits = List.sort_uniq Int.compare lits in
    let tautology =
      let rec go = function
        | a :: (b :: _ as rest) -> (Lit.neg a = b && Lit.var a = Lit.var b) || go rest
        | [ _ ] | [] -> false
      in
      go lits
    in
    let satisfied =
      List.exists (fun l -> s.level.(Lit.var l) = 0 && lit_is_true s l) lits
    in
    if not (tautology || satisfied) then begin
      let lits =
        List.filter (fun l -> not (s.level.(Lit.var l) = 0 && lit_is_false s l)) lits
      in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        (* Unit clause: assign at level 0. Callers add clauses only at
           level 0 (before/between solves). *)
        assert (decision_level s = 0);
        if lit_is_false s l then s.ok <- false
        else if lit_is_unassigned s l then begin
          enqueue s l None;
          (* A stale interrupt flag may fire inside this propagation
             (e.g. a blocking clause added right after a cancelled
             solve): swallow it here — clause addition is not
             interruptible work — and leave the flag set for the next
             [solve] to consume. *)
          try propagate s with
          | Conflict _ -> s.ok <- false
          | Interrupted -> ()
        end
      | lits ->
        let arr = Array.of_list lits in
        let c =
          { lits = arr; w0 = arr.(0); w1 = arr.(1); activity = 0.0; removed = false }
        in
        Vec.push s.clauses c;
        attach_clause s c
    end
  end

(* ----------------------------------------------------------------- *)
(* Conflict analysis (first UIP)                                       *)

(* Recursive learnt-clause minimization (self-subsumption over the
   implication graph): a tail literal is redundant when it has a
   reason and every reason literal is at level 0, already in the
   clause ([seen]), or itself redundant. Precondition: [seen] is true
   exactly on the tail literals of the learnt clause. A successful
   check leaves its marks in [seen] (memoizing the established
   redundancies for later checks) and records them in [to_clear]; a
   failed check undoes only the marks it added. Tail literals live
   strictly below the current decision level, so the walk never
   reaches the UIP or any current-level variable. *)
let lit_redundant s to_clear p =
  if s.reason.(Lit.var p) = None then false
  else begin
    let added = ref [] in
    let stack = ref [ p ] in
    let ok = ref true in
    (try
       while !stack <> [] do
         let l = List.hd !stack in
         stack := List.tl !stack;
         let c =
           match s.reason.(Lit.var l) with
           | Some c -> c
           | None -> assert false
         in
         Array.iter
           (fun q ->
             let v = Lit.var q in
             if v <> Lit.var l && (not s.seen.(v)) && s.level.(v) > 0 then begin
               if s.reason.(v) = None then raise Exit;
               s.seen.(v) <- true;
               added := v :: !added;
               stack := q :: !stack
             end)
           c.lits
       done
     with Exit ->
       ok := false;
       List.iter (fun v -> s.seen.(v) <- false) !added);
    if !ok then to_clear := List.rev_append !added !to_clear;
    !ok
  end

let analyze s confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  (* -1 means "whole conflict clause" on the first iteration *)
  let idx = ref (Vec.size s.trail - 1) in
  let btlevel = ref 0 in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    bump_clause s !confl;
    let lits = !confl.lits in
    (* Skip the pivot literal by variable (clauses never repeat a
       variable): the asserting literal no longer sits at a known
       index now that [lits] is immutable and watches live in w0/w1. *)
    let skip = if !p = -1 then -1 else Lit.var !p in
    for j = 0 to Array.length lits - 1 do
      let q = lits.(j) in
      let v = Lit.var q in
      if v <> skip && (not s.seen.(v)) && s.level.(v) > 0 then begin
        bump_var s v;
        s.seen.(v) <- true;
        if s.level.(v) >= decision_level s then incr path_count
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Select next literal on the trail to expand. *)
    let rec next () =
      let l = Vec.get s.trail !idx in
      decr idx;
      if s.seen.(Lit.var l) then l else next ()
    in
    let l = next () in
    s.seen.(Lit.var l) <- false;
    decr path_count;
    if !path_count <= 0 then begin
      p := l;
      continue := false
    end
    else begin
      (match s.reason.(Lit.var l) with
      | Some c -> confl := c
      | None -> assert false);
      p := l
    end
  done;
  (* Minimize the tail: drop redundant literals (the learnt clause
     can only shrink, never grow). Dropped literals keep their [seen]
     mark for the duration — later redundancy checks may lean on them,
     which is sound because they are themselves implied by the rest. *)
  let tail = !learnt in
  let to_clear = ref [] in
  let kept =
    List.filter
      (fun q ->
        if lit_redundant s to_clear q then begin
          s.n_minimized <- s.n_minimized + 1;
          false
        end
        else true)
      tail
  in
  (* The backtrack level is the highest level among surviving tail
     literals (0 when the minimized clause is asserting at the root). *)
  let btlevel = List.fold_left (fun acc q -> max acc s.level.(Lit.var q)) 0 kept in
  let learnt = Lit.neg !p :: kept in
  (* Clear seen flags for reuse — over the original tail (dropped
     literals included) and everything the redundancy checks marked. *)
  List.iter (fun l -> s.seen.(Lit.var l) <- false) tail;
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  (learnt, btlevel)

(* After a conflict directly caused by assumptions: collect the subset
   of assumptions implying the conflict, starting from literal [p]
   (a failed assumption). *)
let analyze_final s p assumption_set =
  let core = ref [] in
  if s.level.(Lit.var p) > 0 then begin
    s.seen.(Lit.var p) <- true;
    for i = Vec.size s.trail - 1 downto 0 do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      if s.seen.(v) then begin
        (match s.reason.(v) with
        | None ->
          (* A decision — under assumption-driven search all decisions
             at these levels are assumptions. *)
          if Hashtbl.mem assumption_set l then core := l :: !core
        | Some c ->
          Array.iter
            (fun q -> if s.level.(Lit.var q) > 0 then s.seen.(Lit.var q) <- true)
            c.lits);
        s.seen.(v) <- false
      end
    done
  end;
  !core

(* ----------------------------------------------------------------- *)
(* Search                                                              *)

(* The Luby restart sequence 1 1 2 1 1 2 4 ... scaled by [y^k]. *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let record_learnt s learnt btlevel =
  match learnt with
  | [] -> assert false
  | [ l ] ->
    cancel_until s 0;
    if lit_is_unassigned s l then begin
      enqueue s l None;
      (try propagate s with Conflict _ -> s.ok <- false)
    end
    else if lit_is_false s l then s.ok <- false
  | first :: _ ->
    cancel_until s btlevel;
    (* Put a highest-level literal (w.r.t. remaining assignment) second
       so watches stay valid: the asserting literal is first, a literal
       from btlevel second. *)
    let arr = Array.of_list learnt in
    let max_i = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if s.level.(Lit.var arr.(i)) > s.level.(Lit.var arr.(!max_i)) then max_i := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!max_i);
    arr.(!max_i) <- tmp;
    (* [arr] is freshly built and never written again: watches start
       on the asserting literal and the btlevel literal. *)
    let c =
      { lits = arr; w0 = arr.(0); w1 = arr.(1); activity = 0.0; removed = false }
    in
    bump_clause s c;
    Vec.push s.learnts c;
    s.n_learnt_total <- s.n_learnt_total + 1;
    attach_clause s c;
    enqueue s first (Some c)

(* Drop the low-activity half of the learnt clauses. Clauses serving
   as reasons for current assignments are kept. Watch lists are
   rebuilt to exclude removed clauses. *)
let reduce_db s =
  let n = Vec.size s.learnts in
  if n > 0 then begin
    let all = Array.init n (Vec.get s.learnts) in
    (* protect reasons *)
    let protected c =
      let keep = ref false in
      for i = 0 to Vec.size s.trail - 1 do
        match s.reason.(Lit.var (Vec.get s.trail i)) with
        | Some r when r == c -> keep := true
        | Some _ | None -> ()
      done;
      !keep
    in
    Array.sort
      (fun (a : clause) (b : clause) -> Float.compare b.activity a.activity)
      all;
    let cutoff = n / 2 in
    Array.iteri
      (fun i c ->
        if i >= cutoff && Array.length c.lits > 2 && not (protected c) then
          c.removed <- true)
      all;
    (* rebuild the learnt vector and the watch lists *)
    Vec.shrink s.learnts 0;
    Array.iter (fun c -> if not c.removed then Vec.push s.learnts c) all;
    Array.iter
      (fun ws ->
        let kept = ref 0 in
        for i = 0 to Vec.size ws - 1 do
          let c = Vec.get ws i in
          if not c.removed then begin
            Vec.set ws !kept c;
            incr kept
          end
        done;
        Vec.shrink ws !kept)
      s.watches
  end

type result =
  | Sat
  | Unsat

exception Found of result

let pick_branch_var s =
  let rec go () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assign.(v) = -1 then v else go ()
  in
  go ()

(* Process-wide cumulative counters across every solver instance, so
   callers that create many solvers (bench experiments, enumeration
   loops) can still measure total search effort by snapshot/diff.
   Registered in the Obs.Metrics registry (lock-free counters under
   the hood), so one [Obs.Metrics.dump] covers the solver too;
   [global_stats]/[reset_global_stats] keep their exact semantics. *)
let g_decisions = Obs.Metrics.counter "sat.decisions"
let g_propagations = Obs.Metrics.counter "sat.propagations"
let g_conflicts = Obs.Metrics.counter "sat.conflicts"
let g_restarts = Obs.Metrics.counter "sat.restarts"
let g_reduces = Obs.Metrics.counter "sat.reduces"
let g_learnt = Obs.Metrics.counter "sat.learnt"
let g_solves = Obs.Metrics.counter "sat.solves"
let g_phase_flips = Obs.Metrics.counter "sat.phase_flips"
let g_minimized = Obs.Metrics.counter "sat.minimized_lits"

(* Per-call solve durations: the histogram's sum is the old [g_time]
   total, and the p50/p90/p99 spread is new signal (one long solve vs
   many short ones tell very different performance stories). *)
let g_solve_time = Obs.Metrics.histogram "sat.solve_time_s"

let interrupt s = Atomic.set s.stop true

(* Tests (and embedders with tight memory budgets) can force early
   reductions by shrinking the threshold; growth continues
   geometrically from the forced value. *)
let set_learnt_cap s n = s.max_learnts <- float_of_int (max 1 n)

let solve_inner ~assumptions s =
  s.conflict_core <- [];
  (* Size the learnt-DB threshold on first use: a third of the problem
     clauses, floored so small instances never reduce. *)
  if s.max_learnts <= 0.0 then
    s.max_learnts <-
      Float.max 1000.0 (float_of_int (Vec.size s.clauses) /. 3.0);
  if not s.ok then Unsat
  else begin
    let assumption_set = Hashtbl.create (List.length assumptions) in
    List.iter (fun l -> Hashtbl.replace assumption_set l ()) assumptions;
    let assumptions = Array.of_list assumptions in
    (* Assumption-prefix trail reuse: a Sat answer leaves the trail
       frozen, and anything that invalidates it (add_clause, an Unsat
       answer) cancels to level 0 — so every decision level still on
       the trail is the propagation closure of the corresponding
       prefix of the previous solve's assumptions. If the new
       assumptions share that prefix, resume below it: only the suffix
       is re-propagated, which is what makes back-to-back assumption
       solves over a mostly-unchanged model cheap. *)
    let reuse =
      let n =
        min (decision_level s)
          (min (Array.length assumptions) (Array.length s.last_assumps))
      in
      let i = ref 0 in
      while !i < n && assumptions.(!i) = s.last_assumps.(!i) do
        incr i
      done;
      !i
    in
    s.last_assumps <- assumptions;
    let max_conflicts = ref 100.0 in
    let restart_count = ref 0 in
    let outcome = ref None in
    let first_episode = ref true in
    (try
       while true do
         (* One restart-bounded search episode. *)
         let conflicts_here = ref 0 in
         cancel_until s (if !first_episode then reuse else 0);
         first_episode := false;
         (try
            while true do
              (* Cleanup (flag consumption, backtrack to root) is
                 centralized in the episode loop's handler below, which
                 also covers an [Interrupted] raised from deep inside
                 [propagate]. *)
              if Atomic.get s.stop then raise Interrupted;
              (try
                 propagate s;
                 (* No conflict: decide. *)
                 if float_of_int !conflicts_here >= !max_conflicts then begin
                   (* Restart. *)
                   s.n_restarts <- s.n_restarts + 1;
                   (* Restarts are the natural sampling points for the
                      trace's counter track: frequent enough to chart
                      search progress, rare enough to stay cheap. The
                      [enabled] guard keeps the CDCL loop free of any
                      tracing cost otherwise. *)
                   if Obs.Trace.enabled () then
                     Obs.Trace.counter "sat.search"
                       [
                         ("conflicts", float_of_int s.n_conflicts);
                         ("propagations", float_of_int s.n_propagations);
                         ("learnt", float_of_int (Vec.size s.learnts));
                       ];
                   raise Exit
                 end;
                 (* Assumption decisions first. *)
                 let dl = decision_level s in
                 if dl < Array.length assumptions then begin
                   let a = assumptions.(dl) in
                   if lit_is_true s a then begin
                     (* Already satisfied: open an empty decision level
                        so indices keep matching. *)
                     Vec.push s.trail_lim (Vec.size s.trail)
                   end
                   else if lit_is_false s a then begin
                     s.conflict_core <- a :: analyze_final s (Lit.neg a) assumption_set;
                     raise (Found Unsat)
                   end
                   else begin
                     Vec.push s.trail_lim (Vec.size s.trail);
                     s.n_decisions <- s.n_decisions + 1;
                     enqueue s a None
                   end
                 end
                 else begin
                   let v = pick_branch_var s in
                   if v < 0 then raise (Found Sat);
                   Vec.push s.trail_lim (Vec.size s.trail);
                   s.n_decisions <- s.n_decisions + 1;
                   enqueue s (Lit.make v s.phase.(v)) None
                 end
               with Conflict c ->
                 s.n_conflicts <- s.n_conflicts + 1;
                 incr conflicts_here;
                 if decision_level s = 0 then begin
                   s.ok <- false;
                   raise (Found Unsat)
                 end;
                 (* A conflict below the assumption levels must not
                    backtrack past them blindly: analyze computes the
                    proper level; if the learnt clause is asserting at a
                    level inside the assumptions, that is fine — the
                    assumption decisions will be replayed. *)
                 let learnt, btlevel = analyze s c in
                 record_learnt s learnt btlevel;
                 if not s.ok then raise (Found Unsat);
                 decay_activities s)
            done
          with Exit -> ());
         incr restart_count;
         (* Restarts are the safe points to shrink the learnt-clause
            database: backtrack to the root, drop the low-activity
            half once the DB outgrows the adaptive threshold, and grow
            the threshold geometrically so learning still deepens over
            a long run while propagation stops paying for dead
            clauses. *)
         if float_of_int (Vec.size s.learnts) > s.max_learnts then begin
           cancel_until s 0;
           reduce_db s;
           s.n_reduces <- s.n_reduces + 1;
           s.max_learnts <- s.max_learnts *. 1.3
         end;
         max_conflicts := 100.0 *. luby 2.0 !restart_count
       done
     with
    | Found r -> outcome := Some r
    | Interrupted ->
      (* Leave the solver reusable: consume the flag and return to the
         root level before unwinding, wherever the raise came from
         (decision boundary or mid-propagation). *)
      Atomic.set s.stop false;
      cancel_until s 0;
      raise Interrupted);
    let r = match !outcome with Some r -> r | None -> assert false in
    (match r with
    | Sat ->
      (* Freeze the model before leaving the search state. *)
      ()
    | Unsat -> cancel_until s 0);
    r
  end

let solve ?(assumptions = []) s =
  let t0 = Telemetry.now () in
  let d0 = s.n_decisions
  and p0 = s.n_propagations
  and c0 = s.n_conflicts
  and r0 = s.n_restarts
  and rd0 = s.n_reduces
  and l0 = s.n_learnt_total
  and pf0 = s.n_phase_flips
  and m0 = s.n_minimized in
  (* The finally block also runs when the solve is interrupted: the
     effort spent before the interrupt still counts. *)
  Fun.protect
    ~finally:(fun () ->
      let dt = Telemetry.now () -. t0 in
      s.n_solves <- s.n_solves + 1;
      s.solve_time <- s.solve_time +. dt;
      Obs.Metrics.add g_decisions (s.n_decisions - d0);
      Obs.Metrics.add g_propagations (s.n_propagations - p0);
      Obs.Metrics.add g_conflicts (s.n_conflicts - c0);
      Obs.Metrics.add g_restarts (s.n_restarts - r0);
      Obs.Metrics.add g_reduces (s.n_reduces - rd0);
      Obs.Metrics.add g_learnt (s.n_learnt_total - l0);
      Obs.Metrics.add g_phase_flips (s.n_phase_flips - pf0);
      Obs.Metrics.add g_minimized (s.n_minimized - m0);
      Obs.Metrics.incr g_solves;
      Obs.Metrics.observe g_solve_time dt)
    (fun () -> solve_inner ~assumptions s)

let value s v = if v < s.nvars then s.assign.(v) = 1 else false

let lit_value s l = if Lit.sign l then value s (Lit.var l) else not (value s (Lit.var l))

(* The raw core collected by [analyze_final] can mention an assumption
   more than once (the failed assumption is consed onto the collected
   set) and its order reflects the trail, i.e. the assumption order of
   the failing solve. Canonicalize: deduplicate and sort, so the
   reported core is a set — equal input assumption sets give equal
   cores regardless of the order they were passed in. *)
let unsat_core s = List.sort_uniq Int.compare s.conflict_core

(* Greedy deletion-based core minimization. Starting from [core] (by
   default the last solve's core), try dropping each literal in turn:
   re-solve under the remaining candidates and keep the literal only
   when its removal makes the instance satisfiable. Each Unsat answer
   also refines the candidate set to the newly reported core
   (clause-set refinement), which typically removes several literals
   per solve. The result is a minimal core: removing any single
   literal leaves a satisfiable set.

   Candidates are canonicalized first, and each keep/drop decision is
   driven purely by the SAT/UNSAT ground truth of a candidate subset —
   never by solver-state artifacts like the refined core of the
   re-solve — so the returned set is a function of the input set
   alone: permuting the input literals cannot change the result.
   Re-solves count towards the solver's statistics; the solver stays
   usable afterwards. *)
let minimize_core ?core s =
  let core0 =
    match core with
    | Some c -> List.sort_uniq Int.compare c
    | None -> unsat_core s
  in
  let rec shrink kept = function
    | [] -> kept
    | l :: rest -> (
      match solve ~assumptions:(List.rev_append kept rest) s with
      | Unsat -> shrink kept rest (* [l] is redundant *)
      | Sat -> shrink (l :: kept) rest)
  in
  let result = List.sort Int.compare (shrink [] core0) in
  s.conflict_core <- result;
  result

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt : int;
  reduces : int;
  solves : int;
  solve_time : float;
}

(* Modernization counters live outside the [stats] record (which many
   aggregators duplicate field by field): per-instance accessors here,
   process-wide totals in the sat.phase_flips / sat.minimized_lits
   registry counters. *)
let phase_flips s = s.n_phase_flips
let minimized_lits s = s.n_minimized
let saved_phase s v = if v < s.nvars then s.phase.(v) else false

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learnt = Vec.size s.learnts;
    reduces = s.n_reduces;
    solves = s.n_solves;
    solve_time = s.solve_time;
  }

let global_stats () =
  {
    decisions = Obs.Metrics.counter_value g_decisions;
    propagations = Obs.Metrics.counter_value g_propagations;
    conflicts = Obs.Metrics.counter_value g_conflicts;
    restarts = Obs.Metrics.counter_value g_restarts;
    learnt = Obs.Metrics.counter_value g_learnt;
    reduces = Obs.Metrics.counter_value g_reduces;
    solves = Obs.Metrics.counter_value g_solves;
    solve_time = Obs.Metrics.histogram_sum g_solve_time;
  }

let reset_global_stats () =
  Obs.Metrics.set_counter g_decisions 0;
  Obs.Metrics.set_counter g_propagations 0;
  Obs.Metrics.set_counter g_conflicts 0;
  Obs.Metrics.set_counter g_restarts 0;
  Obs.Metrics.set_counter g_reduces 0;
  Obs.Metrics.set_counter g_learnt 0;
  Obs.Metrics.set_counter g_solves 0;
  Obs.Metrics.set_counter g_phase_flips 0;
  Obs.Metrics.set_counter g_minimized 0;
  Obs.Metrics.reset_histogram g_solve_time

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<h>solves %d; decisions %d; propagations %d; conflicts %d; restarts %d; \
     learnt %d; reduces %d; solve time %.3f ms@]"
    st.solves st.decisions st.propagations st.conflicts st.restarts st.learnt
    st.reduces (st.solve_time *. 1000.)

(* ----------------------------------------------------------------- *)
(* Cloning                                                             *)

(* Snapshot [s] into an independent solver: problem clauses, learnt
   clauses, the level-0 trail and the VSIDS/phase state all carry
   over, so a clone resumes with everything the original has already
   deduced. Must be called between solves (the original at rest, not
   mid-search); the original is only read.

   The literal arrays are NOT copied: [clause.lits] is immutable (see
   the header comment), so original and clones share every problem
   and learnt literal array — a clone allocates only the per-clause
   records (watch fields, activity) plus the per-variable arrays.
   That drops the per-clone cost from O(total literals) to O(clauses
   + vars), which is what makes one-clone-per-worker schemes (ladder
   probes, cube enumeration, portfolio lanes) affordable.

   Invariants restored on the copy:
   - each clone gets fresh clause records, so its watch fields w0/w1
     evolve independently; watch lists are rebuilt in database order;
   - reasons are dropped: after [cancel_until 0] only level-0
     assignments remain, and neither [analyze] nor [analyze_final]
     ever dereferences a level-0 reason;
   - the level-0 trail segment is propagation-closed (every level-0
     literal was processed through [propagate] while at level 0), so
     [qhead] can start at the trail end. *)
let clone s =
  let copy_vec_of_clauses v =
    let out = Vec.create dummy_clause in
    for i = 0 to Vec.size v - 1 do
      let c = Vec.get v i in
      Vec.push out
        { lits = c.lits; w0 = c.w0; w1 = c.w1; activity = c.activity;
          removed = false }
    done;
    out
  in
  let t =
    {
      clauses = copy_vec_of_clauses s.clauses;
      learnts = copy_vec_of_clauses s.learnts;
      watches = Array.init (Array.length s.watches) (fun _ -> Vec.create dummy_clause);
      assign = Array.copy s.assign;
      level = Array.copy s.level;
      reason = Array.make (Array.length s.reason) None;
      phase = Array.copy s.phase;
      trail = Vec.copy s.trail;
      trail_lim = Vec.copy s.trail_lim;
      qhead = 0;
      activity = Array.copy s.activity;
      var_inc = s.var_inc;
      cla_inc = s.cla_inc;
      heap = Array.copy s.heap;
      heap_size = s.heap_size;
      heap_pos = Array.copy s.heap_pos;
      seen = Array.make (Array.length s.seen) false;
      nvars = s.nvars;
      ok = s.ok;
      max_learnts = s.max_learnts;
      conflict_core = [];
      last_assumps = [||];
      stop = Atomic.make false;
      n_decisions = 0;
      n_propagations = 0;
      n_conflicts = 0;
      n_restarts = 0;
      n_reduces = 0;
      n_learnt_total = 0;
      n_solves = 0;
      solve_time = 0.0;
      n_phase_flips = 0;
      n_minimized = 0;
    }
  in
  for i = 0 to Vec.size t.clauses - 1 do
    attach_clause t (Vec.get t.clauses i)
  done;
  for i = 0 to Vec.size t.learnts - 1 do
    attach_clause t (Vec.get t.learnts i)
  done;
  cancel_until t 0;
  t.qhead <- Vec.size t.trail;
  t
