let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type span = {
  mutable seconds : float;
  mutable events : int;
}

let span () = { seconds = 0.0; events = 0 }

let record sp dt =
  sp.seconds <- sp.seconds +. dt;
  sp.events <- sp.events + 1

let timed sp f =
  let r, dt = time f in
  record sp dt;
  r

let seconds sp = sp.seconds
let events sp = sp.events
