(* Thin shim over the shared monotonic clock: every phase of the stack
   keeps calling [Sat.Telemetry.now], but the readings can no longer go
   backwards under NTP steps. *)
let now = Obs.Clock.now

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Lock-free float accumulation: floats have no fetch-and-add, so CAS
   until the addition lands. Contention is low (a handful of worker
   domains recording coarse spans). *)
let add_float cell dt =
  let rec go () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. dt)) then go ()
  in
  go ()

type span = {
  span_seconds : float Atomic.t;
  span_events : int Atomic.t;
}

let span () = { span_seconds = Atomic.make 0.0; span_events = Atomic.make 0 }

let record sp dt =
  add_float sp.span_seconds dt;
  Atomic.incr sp.span_events

let timed sp f =
  (* Record even when [f] raises: interruption of a solve must not
     lose the time it burned. *)
  let t0 = now () in
  Fun.protect ~finally:(fun () -> record sp (now () -. t0)) f

let seconds sp = Atomic.get sp.span_seconds
let events sp = Atomic.get sp.span_events
