(** Tseitin encoding of circuits into a solver.

    Each distinct circuit node gets at most one definition literal; the
    memo table lives in the context so repeated encodings across
    several [assert_true] calls share definitions. Top-level
    conjunctions and disjunctions are asserted directly (no definition
    variable), which keeps the CNF close to hand-written size. *)

type ctx

val create : Solver.t -> ctx
val solver : ctx -> Solver.t

val lit_of : ctx -> Circuit.t -> Lit.t
(** A literal equivalent to the node (definition clauses added to the
    solver as needed). Constants map to a dedicated true variable. *)

val assert_true : ctx -> Circuit.t -> unit
(** Constrain the node to be true. *)

val assert_false : ctx -> Circuit.t -> unit
