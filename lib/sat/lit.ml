type var = int
type t = int

let make v sign = (v lsl 1) lor (if sign then 0 else 1)
let pos v = v lsl 1
let neg_of v = (v lsl 1) lor 1
let var l = l lsr 1
let sign l = l land 1 = 0
let neg l = l lxor 1
let to_int l = if sign l then var l + 1 else -(var l + 1)

let of_int n =
  if n = 0 then invalid_arg "Lit.of_int: zero"
  else if n > 0 then pos (n - 1)
  else neg_of (-n - 1)

let pp ppf l = Format.fprintf ppf "%d" (to_int l)
