(** DIMACS CNF reading and writing, for debugging and interop. *)

val to_string : nvars:int -> Lit.t list list -> string
(** Render a clause set in DIMACS CNF format. *)

val parse : string -> (int * Lit.t list list, string) result
(** Parse DIMACS CNF; returns (variable count, clauses). Accepts
    comment lines and a standard [p cnf] header; clauses may span
    lines and are 0-terminated. Errors (with precise messages) on
    malformed or duplicate [p] lines, on an unterminated trailing
    clause, and when the body disagrees with the declared variable or
    clause counts. Without a header the variable count is inferred
    from the clauses. *)

val load_into : Solver.t -> string -> (unit, string) result
(** Parse and add every clause to the solver, allocating variables as
    needed. *)
