(** A CDCL SAT solver.

    MiniSat-style conflict-driven clause learning: two-watched-literal
    propagation, 1-UIP conflict analysis with clause learning, VSIDS
    branching with phase saving, Luby restarts, and incremental solving
    under assumptions. This is the search backend of the relational
    model finder ({!Relog.Finder}) and of the MaxSAT solver
    ({!Maxsat}). *)

type t

val create : unit -> t

val new_var : t -> Lit.var
(** Allocate a fresh variable. *)

val nb_vars : t -> int
val nb_clauses : t -> int
(** Problem clauses added so far (not learnt clauses). *)

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause. Tautologies are dropped, duplicate literals
    merged. Adding the empty clause (or a clause false under level-0
    assignments) makes the instance permanently unsatisfiable. *)

type result =
  | Sat
  | Unsat

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under the given assumption literals. The solver is
    incremental: more clauses and variables may be added after a call
    and [solve] called again.

    After a [Sat] answer the trail is kept warm: the next [solve]
    backtracks only to the longest prefix of assumptions shared with
    the previous call (re-propagating just the changed suffix) rather
    than to level 0 — callers that keep a stable assumption prefix
    across calls get cheaper re-solves for free. [Unsat], clause
    addition and {!interrupt} all fall back to a cold (level-0)
    restart, so answers are unaffected either way.
    @raise Interrupted if {!interrupt} was called while solving; the
    solver stays usable (backtracked to the root level, flag cleared)
    and [solve] may simply be called again. *)

exception Interrupted

val interrupt : t -> unit
(** Ask a running [solve] to stop. Safe to call from any domain; a
    flag set while no solve is running makes the next solve raise
    immediately. Cheap (one atomic store). The flag is polled at
    every CDCL decision boundary {e and} inside long propagation
    waves (every 64 trail positions), so cancellation latency is
    bounded by a few dozen clause visits — a portfolio loser or a
    retired ladder probe stops promptly even mid-propagation. *)

val clone : t -> t
(** An independent snapshot of the solver: problem clauses, learnt
    clauses, level-0 assignments and VSIDS/phase heuristic state all
    carry over, so the clone resumes with everything the original
    already deduced. Clause literal arrays are immutable and shared
    between original and clones — a clone allocates only per-clause
    watch records and per-variable arrays, so cloning costs
    O(clauses + vars), not O(total literals). The original is only
    read, so several clones may be taken concurrently — but only
    while the original is at rest (between solves, as for
    {!add_clause}). The clone starts with fresh per-instance {!stats}
    and no pending {!interrupt}. *)

val set_learnt_cap : t -> int -> unit
(** Override the adaptive learnt-database reduction threshold (normally
    sized from the problem at the first [solve] and grown
    geometrically after each reduction). Mainly for tests that need to
    force reductions on small instances, and for embedders with tight
    memory budgets. *)

val value : t -> Lit.var -> bool
(** Value of a variable in the model found by the last [solve] that
    returned [Sat]. Variables irrelevant to the formula default to
    [false]. Unspecified after [Unsat]. *)

val lit_value : t -> Lit.t -> bool

val unsat_core : t -> Lit.t list
(** After [solve ~assumptions] returned [Unsat]: a subset of the
    assumptions sufficient for unsatisfiability (the final conflict
    clause over assumptions). Deduplicated and sorted, so the result
    is canonical as a set. Empty when the instance is unsatisfiable
    regardless of assumptions. The core is {e not} guaranteed minimal;
    see {!minimize_core}. *)

val minimize_core : ?core:Lit.t list -> t -> Lit.t list
(** Greedy deletion-based minimization of an unsatisfiable assumption
    set ([core], default {!unsat_core}): drop each literal whose
    removal keeps the remaining set unsatisfiable. The result
    is minimal (removing any single literal makes the set
    satisfiable), sorted, and — because candidates are canonicalized
    before the sweep — depends only on the input {e set}, not the
    order its literals were passed in. Runs O(|core|) incremental
    solves on this solver (counted in {!stats}); the solver remains
    usable, and {!unsat_core} afterwards returns the minimized core. *)

val phase_flips : t -> int
(** Number of assignments (propagations and decisions) that overwrote
    a variable's saved phase with the opposite polarity. Decisions
    always reuse the saved phase, so every flip is forced by the
    clauses: a low flip rate means phase saving is preserving partial
    assignments across restarts and backjumps as intended.
    Process-wide total: the [sat.phase_flips] metrics counter. *)

val minimized_lits : t -> int
(** Literals removed from learnt clauses by recursive minimization
    (self-subsumption over the implication graph) during conflict
    analysis. Minimization only ever shrinks a learnt clause.
    Process-wide total: the [sat.minimized_lits] metrics counter. *)

val saved_phase : t -> Lit.var -> bool
(** The saved phase of a variable — the polarity the next decision on
    it would pick. Variables never assigned default to [false].
    {!clone} preserves saved phases; {!interrupt} leaves them intact
    (the backtrack to root does not erase phases). *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learnt : int;
      (** for {!stats}: current learnt-clause database size; for
          {!global_stats}: learnt clauses ever recorded *)
  reduces : int;  (** learnt-clause database reductions performed *)
  solves : int;  (** completed [solve] calls *)
  solve_time : float;  (** wall seconds spent inside [solve] *)
}

val stats : t -> stats

val global_stats : unit -> stats
(** Cumulative counters across every solver instance of the process
    (deltas accumulated per [solve] call). Bench drivers snapshot
    this before/after a workload to measure total search effort even
    when many solvers are created internally. *)

val reset_global_stats : unit -> unit

val pp_stats : Format.formatter -> stats -> unit
