type t = {
  node_id : int;
  node_view : view;
}

and view =
  | True
  | False
  | Input of Lit.t
  | Not of t
  | And of t array
  | Or of t array

(* Structural key used for hash-consing: children identified by id. *)
type key =
  | K_true
  | K_false
  | K_input of int
  | K_not of int
  | K_and of int list
  | K_or of int list

type builder = {
  table : (key, t) Hashtbl.t;
  mutable next : int;
}

let builder () = { table = Hashtbl.create 1024; next = 0 }
let view n = n.node_view
let id n = n.node_id

let intern b key view =
  match Hashtbl.find_opt b.table key with
  | Some n -> n
  | None ->
    let n = { node_id = b.next; node_view = view } in
    b.next <- b.next + 1;
    Hashtbl.add b.table key n;
    n

let tru b = intern b K_true True
let fls b = intern b K_false False
let input b l = intern b (K_input l) (Input l)

let is_true n = match n.node_view with True -> true | _ -> false
let is_false n = match n.node_view with False -> true | _ -> false

let not_ b n =
  match n.node_view with
  | True -> fls b
  | False -> tru b
  | Not m -> m
  | Input l -> input b (Lit.neg l)
  | And _ | Or _ -> intern b (K_not n.node_id) (Not n)

(* Normalize an operand list for And: flatten nested Ands, drop [True],
   short-circuit on [False], deduplicate, detect complementary pairs. *)
let norm_nary ~unit ~zero ~flatten operands =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let absorbed = ref false in
  let rec add n =
    if not !absorbed then
      match n.node_view with
      | v when v = zero -> absorbed := true
      | v when v = unit -> ()
      | _ -> (
        match flatten n.node_view with
        | Some children -> Array.iter add children
        | None ->
          if not (Hashtbl.mem seen n.node_id) then begin
            Hashtbl.add seen n.node_id ();
            acc := n :: !acc
          end)
  in
  List.iter add operands;
  if !absorbed then None
  else begin
    (* Complementary pair (x and Not x) forces the zero element. *)
    let complement =
      List.exists
        (fun n ->
          match n.node_view with
          | Not m -> Hashtbl.mem seen m.node_id
          | Input l -> (
            (* An input's complement is Input (neg l). *)
            List.exists
              (fun m ->
                match m.node_view with
                | Input l' -> l' = Lit.neg l
                | _ -> false)
              !acc)
          | _ -> false)
        !acc
    in
    if complement then None else Some (List.rev !acc)
  end

let sort_nodes ns = List.sort (fun a b -> Int.compare a.node_id b.node_id) ns

let and_ b operands =
  let flatten = function And cs -> Some cs | _ -> None in
  match norm_nary ~unit:True ~zero:False ~flatten operands with
  | None -> fls b
  | Some [] -> tru b
  | Some [ n ] -> n
  | Some ns ->
    let ns = sort_nodes ns in
    intern b (K_and (List.map id ns)) (And (Array.of_list ns))

let or_ b operands =
  let flatten = function Or cs -> Some cs | _ -> None in
  match norm_nary ~unit:False ~zero:True ~flatten operands with
  | None -> tru b
  | Some [] -> fls b
  | Some [ n ] -> n
  | Some ns ->
    let ns = sort_nodes ns in
    intern b (K_or (List.map id ns)) (Or (Array.of_list ns))

let implies b x y = or_ b [ not_ b x; y ]
let iff b x y = and_ b [ implies b x y; implies b y x ]
let xor b x y = not_ b (iff b x y)
let ite b c t e = and_ b [ implies b c t; implies b (not_ b c) e ]

let size n =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n.node_id) then begin
      Hashtbl.add seen n.node_id ();
      match n.node_view with
      | True | False | Input _ -> ()
      | Not m -> go m
      | And cs | Or cs -> Array.iter go cs
    end
  in
  go n;
  Hashtbl.length seen

let rec pp ppf n =
  match n.node_view with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Input l -> Lit.pp ppf l
  | Not m -> Format.fprintf ppf "!(%a)" pp m
  | And cs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_array ~pp_sep:(fun f () -> Format.pp_print_string f " & ") pp)
      cs
  | Or cs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_array ~pp_sep:(fun f () -> Format.pp_print_string f " | ") pp)
      cs
