(** Propositional variables and literals.

    Variables are dense non-negative integers allocated by the solver.
    A literal packs a variable and a sign into one integer
    ([2v] positive, [2v+1] negative), the classic MiniSat encoding:
    negation is [xor 1], and literals index watch lists directly. *)

type var = int
type t = int

val make : var -> bool -> t
(** [make v sign]: the literal [v] if [sign], [¬v] otherwise. *)

val pos : var -> t
val neg_of : var -> t

val var : t -> var
val sign : t -> bool
(** [sign l] is [true] for positive literals. *)

val neg : t -> t
(** Complement. *)

val to_int : t -> int
(** DIMACS integer: [v+1] for positive, [-(v+1)] for negative. *)

val of_int : int -> t
(** Inverse of {!to_int}. Raises [Invalid_argument] on 0. *)

val pp : Format.formatter -> t -> unit
