external now : unit -> (float[@unboxed])
  = "mdqvtr_clock_monotonic_byte" "mdqvtr_clock_monotonic"
[@@noalloc]

let since t0 = now () -. t0
