(** Monotonic time source shared by the whole stack.

    Every span, telemetry timer and bench measurement reads this clock,
    so durations can never go negative under NTP steps or manual clock
    adjustment (the failure mode of [Unix.gettimeofday], which
    {!Sat.Telemetry} used before this module existed).

    The origin is unspecified — only differences between two [now]
    readings are meaningful. *)

val now : unit -> float
(** Seconds on a monotonic clock ([clock_gettime(CLOCK_MONOTONIC)]).
    The native call is allocation-free. *)

val since : float -> float
(** [since t0] is [now () -. t0]. *)
