(** Hierarchical spans with per-domain buffers and Chrome/JSONL sinks.

    {2 Model}

    A span is a named begin/end pair recorded on the buffer of the
    domain that executes it, so every domain renders as its own track.
    Spans nest through a per-domain stack; a span's logical parent is
    the top of that stack, or — when the stack is empty — the
    {e context} installed by {!with_context}. [Parallel.Pool.submit]
    captures {!current} at submission time and wraps the task in
    {!with_context}, so spans opened inside a pool future attach to the
    submitting span while still rendering on the worker's track (the
    exporter draws a flow arrow between the two).

    {2 Cost}

    Recording is enabled by {!set_enabled} (or the [MDQVTR_TRACE_LOG]
    environment variable, which also installs an [at_exit] JSONL
    flush). When disabled, every entry point is a single atomic load
    and a direct tail call — no closure is allocated by this module and
    the [args] thunk is never run, so permanent instrumentation is free
    on hot paths. Buffers are domain-local: recording never takes a
    lock and never contends across domains. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded events (every domain's buffer). Call only while
    no traced work is in flight. *)

(** {2 Context handoff} *)

type context = int
(** The span id a task should attach to; [0] means "no parent". *)

val null_context : context

val current : unit -> context
(** The innermost open span of the calling domain (or its installed
    context when no span is open); {!null_context} when tracing is
    disabled. Capture this where work is {e submitted}. *)

val with_context : context -> (unit -> 'a) -> 'a
(** Run a thunk with the given parent context installed on the calling
    domain. Restores the previous context afterwards (exceptions
    included). Where work is {e executed}. *)

(** {2 Recording} *)

val with_span :
  ?args:(unit -> (string * Json.t) list) -> name:string -> (unit -> 'a) -> 'a
(** [with_span ~name f] records a begin event, runs [f], and records
    the end event even if [f] raises. [args] is evaluated only when
    tracing is enabled. *)

val instant : ?args:(unit -> (string * Json.t) list) -> string -> unit
(** A zero-duration marker event (cache hits, race winners, ...). *)

val counter : string -> (string * float) list -> unit
(** A counter sample; Chrome renders each series as a stacked area
    chart on the emitting domain's track. Call sites on hot paths
    should guard with {!enabled} to avoid building the value list. *)

(** {2 Inspection and export} *)

type event = {
  ph : [ `Begin | `End | `Instant | `Counter ];
  name : string;
  ts : float;  (** {!Clock.now} seconds *)
  tid : int;  (** recording domain's id *)
  id : int;  (** span id ([`Begin] only; 0 otherwise) *)
  parent : int;  (** parent span id, 0 = root ([`Begin]/[`Instant]) *)
  args : (string * Json.t) list;
}

val events : unit -> event list
(** Snapshot of all recorded events, sorted by timestamp. Call while
    traced work is quiescent (same caveat as {!clear}). *)

val export_chrome : string -> unit
(** Write the Chrome trace-event JSON ([{"traceEvents": [...]}]) to a
    file — loadable in Perfetto / [about://tracing]. One track per
    domain ([pid] 1, [tid] = domain id), thread-name metadata, [B]/[E]
    duration events (args carry [span]/[parent] ids plus user args),
    [i] instants, [C] counter series, and [s]/[f] flow arrows for every
    cross-domain parent handoff. *)

val export_jsonl : string -> unit
(** Write one JSON object per line ([ph]/[name]/[ts]/[tid]/[span]/
    [parent]/[args]) — the structured event log for machine
    consumption. Setting [MDQVTR_TRACE_LOG=FILE] in the environment
    enables tracing at startup and writes this log at exit. *)
