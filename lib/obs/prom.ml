type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

type t = {
  types : (string * string) list;
  samples : sample list;
}

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = ':'

let parse_value s =
  match String.trim s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some Float.nan
  | v -> float_of_string_opt v

(* label body: key="value",... — values may contain escaped quotes. *)
let parse_labels body =
  let n = String.length body in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      let start = i in
      let i = ref i in
      while !i < n && is_name_char body.[!i] do incr i done;
      if !i = start || !i >= n || body.[!i] <> '=' then
        Error (Printf.sprintf "bad label at %d in %S" start body)
      else begin
        let key = String.sub body start (!i - start) in
        incr i;
        if !i >= n || body.[!i] <> '"' then
          Error (Printf.sprintf "unquoted label value in %S" body)
        else begin
          incr i;
          let b = Buffer.create 16 in
          let err = ref None in
          let fin = ref false in
          while (not !fin) && !err = None do
            if !i >= n then err := Some "unterminated label value"
            else
              match body.[!i] with
              | '"' ->
                fin := true;
                incr i
              | '\\' when !i + 1 < n ->
                Buffer.add_char b
                  (match body.[!i + 1] with
                  | 'n' -> '\n'
                  | c -> c);
                i := !i + 2
              | c ->
                Buffer.add_char b c;
                incr i
          done;
          match !err with
          | Some e -> Error e
          | None ->
            let acc = (key, Buffer.contents b) :: acc in
            if !i < n && body.[!i] = ',' then go (!i + 1) acc
            else if !i >= n then Ok (List.rev acc)
            else Error (Printf.sprintf "junk after label at %d in %S" !i body)
        end
      end
    end
  in
  go 0 []

let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then Error (Printf.sprintf "no metric name in %S" line)
  else begin
    let name = String.sub line 0 !i in
    let labels, rest_start =
      if !i < n && line.[!i] = '{' then begin
        match String.index_from_opt line !i '}' with
        | None -> (Error "unterminated label set", n)
        | Some close ->
          (parse_labels (String.sub line (!i + 1) (close - !i - 1)), close + 1)
      end
      else (Ok [], !i)
    in
    match labels with
    | Error e -> Error e
    | Ok labels -> (
      let rest = String.sub line rest_start (n - rest_start) in
      if rest = "" || rest.[0] <> ' ' then
        Error (Printf.sprintf "missing value in %S" line)
      else
        match parse_value rest with
        | None -> Error (Printf.sprintf "bad value %S in %S" rest line)
        | Some v -> Ok { s_name = name; s_labels = labels; s_value = v })
  end

let parse body =
  let lines = String.split_on_char '\n' body in
  let rec go lines types samples =
    match lines with
    | [] -> Ok { types = List.rev types; samples = List.rev samples }
    | line :: rest -> (
      let line = String.trim line in
      if line = "" then go rest types samples
      else if String.length line >= 6 && String.sub line 0 6 = "# HELP" then
        go rest types samples
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ]
          when List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]
          ->
          if List.mem_assoc name types then
            Error (Printf.sprintf "duplicate # TYPE for %s" name)
          else go rest ((name, kind) :: types) samples
        | _ -> Error (Printf.sprintf "malformed TYPE line %S" line)
      end
      else if String.length line >= 1 && line.[0] = '#' then
        Error (Printf.sprintf "unknown comment line %S" line)
      else
        match parse_sample line with
        | Error e -> Error e
        | Ok s -> go rest types (s :: samples))
  in
  go lines [] []

let labels_equal a b =
  List.length a = List.length b
  && List.for_all (fun (k, v) -> List.assoc_opt k b = Some v) a

let value t ?(labels = []) name =
  List.find_opt
    (fun s -> s.s_name = name && labels_equal s.s_labels labels)
    t.samples
  |> Option.map (fun s -> s.s_value)

let counter_value t name = Option.map int_of_float (value t name)
let gauge_value t name = value t name

let buckets t name =
  let bucket_name = name ^ "_bucket" in
  List.filter_map
    (fun s ->
      if s.s_name <> bucket_name then None
      else
        match List.assoc_opt "le" s.s_labels with
        | None -> None
        | Some le ->
          parse_value le |> Option.map (fun ub -> (ub, int_of_float s.s_value)))
    t.samples

let histogram_count t name = Option.map int_of_float (value t (name ^ "_count"))
let histogram_sum t name = value t (name ^ "_sum")

let percentile t name q =
  match histogram_count t name with
  | None | Some 0 -> None
  | Some count ->
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float ((float_of_int count *. q) +. 0.999999) in
      if r < 1 then 1 else if r > count then count else r
    in
    let rec go = function
      | [] -> None
      | (ub, cum) :: rest -> if cum >= rank then Some ub else go rest
    in
    go (buckets t name)
