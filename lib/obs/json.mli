(** Canonical JSON value, printer and strict parser.

    The toolchain has no JSON library, and before this module existed
    {!Echo.Telemetry} and the bench driver each hand-rolled their own
    emitter. This is the single shared implementation: telemetry
    roll-ups, [BENCH_*.json], the Chrome trace sink and the JSONL event
    log all go through it. {!Echo.Telemetry.json} re-exports the type,
    so existing constructors keep working. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** JSON string-body escaping. ["\""], ["\\"], [\b \f \n \r \t] get
    their two-character escapes; every other control character below
    [0x20] becomes [\uXXXX]. (The pre-[lib/obs] emitter forgot [\b] and
    [\f] — they round-tripped as []/[], which strict
    parsers accept but which this module now emits canonically.) *)

val emit : Buffer.t -> t -> unit
(** Compact (single-line) serialization. Floats print as [%.6f];
    non-finite floats clamp to [null] (JSON has no NaN/Infinity). *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict parser for the subset this module emits (and standard JSON
    in general: all escapes incl. [\uXXXX], exponent floats, nested
    arrays/objects). Rejects trailing garbage. Used by tests to
    round-trip trace files without a Python dependency; numbers with
    [.], [e] or [E] parse as [Float], others as [Int]. *)

val member : string -> t -> t
(** [member k (Obj ...)] is the value bound to [k], or [Null] when
    absent or when the value is not an object. *)

val to_list : t -> t list
(** The elements of a [List], or [[]] for any other value. *)

(** Typed accessors, [None] on a value of any other shape — the
    pattern every JSON-protocol consumer (the transformation server's
    request decoder, the test clients) otherwise re-rolls. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
