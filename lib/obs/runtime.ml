let g_heap_words = Metrics.gauge "runtime.gc.heap_words"
let g_live_words = Metrics.gauge "runtime.gc.live_words"
let g_minor = Metrics.gauge "runtime.gc.minor_collections"
let g_major = Metrics.gauge "runtime.gc.major_collections"
let g_compactions = Metrics.gauge "runtime.gc.compactions"
let g_minor_words = Metrics.gauge "runtime.gc.minor_words_total"
let g_uptime = Metrics.gauge "runtime.uptime_s"
let c_samples = Metrics.counter "runtime.samples"

(* Hook table and thread state share one mutex; hooks are few and
   cheap, ticks are seconds apart, so contention is irrelevant. *)
let mu = Mutex.create ()
let hooks : (string * (unit -> unit)) list ref = ref []
let interval = ref 5.0
let want_stop = ref false
let thread : Thread.t option ref = ref None
let started_at = ref None

let with_mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let on_sample name f =
  with_mu (fun () -> hooks := (name, f) :: List.remove_assoc name !hooks)

let remove_sample name =
  with_mu (fun () -> hooks := List.remove_assoc name !hooks)

let sample_now () =
  let st = Gc.quick_stat () in
  Metrics.set_gauge g_heap_words (float_of_int st.Gc.heap_words);
  Metrics.set_gauge g_live_words (float_of_int st.Gc.live_words);
  Metrics.set_gauge g_minor (float_of_int st.Gc.minor_collections);
  Metrics.set_gauge g_major (float_of_int st.Gc.major_collections);
  Metrics.set_gauge g_compactions (float_of_int st.Gc.compactions);
  Metrics.set_gauge g_minor_words st.Gc.minor_words;
  (match !started_at with
  | Some t0 -> Metrics.set_gauge g_uptime (Clock.since t0)
  | None -> ());
  let hs = with_mu (fun () -> !hooks) in
  List.iter (fun (_, f) -> try f () with _ -> ()) hs;
  Metrics.incr c_samples

(* Sleep in <= 50ms slices so [stop] is honoured promptly even with
   multi-second intervals. *)
let rec nap remaining =
  if remaining > 0. && not !want_stop then begin
    Thread.delay (Float.min remaining 0.05);
    nap (remaining -. 0.05)
  end

let rec run () =
  if not !want_stop then begin
    sample_now ();
    nap !interval;
    run ()
  end

let start ?(interval_s = 5.0) () =
  with_mu (fun () ->
      interval := Float.max 0.001 interval_s;
      if !started_at = None then started_at := Some (Clock.now ());
      match !thread with
      | Some _ -> ()
      | None ->
        want_stop := false;
        thread := Some (Thread.create run ()))

let stop () =
  let t = with_mu (fun () -> !thread) in
  match t with
  | None -> ()
  | Some t ->
    want_stop := true;
    Thread.join t;
    with_mu (fun () ->
        thread := None;
        want_stop := false)

let running () = with_mu (fun () -> !thread <> None)
