(** Periodic runtime sampler: a background thread that refreshes
    process-level gauges on a fixed cadence so a scrape of the metrics
    registry always carries fresh GC and liveness data without any
    cooperation from the serving path.

    Each tick records GC statistics (via [Gc.quick_stat], which does
    not force a major cycle): [runtime.gc.heap_words],
    [runtime.gc.live_words] (as of the last major slice),
    [runtime.gc.minor_collections], [runtime.gc.major_collections],
    [runtime.gc.compactions], [runtime.gc.minor_words_total]; plus
    [runtime.uptime_s] (seconds since {!start}) and the
    [runtime.samples] counter, bumped once per tick. Stock OCaml has
    no census of live domains, so [runtime.domains] is set by the
    caller (the server registers a hook publishing its worker-pool
    size plus the main domain).

    Server-specific gauges (open connections, live sessions, queue
    depths) are attached by the caller with {!on_sample}; the sampler
    runs every registered hook each tick, so gauge freshness is bounded
    by the interval regardless of request traffic. *)

val on_sample : string -> (unit -> unit) -> unit
(** [on_sample name f] registers (or replaces, keyed by [name]) a hook
    run on every tick, after the built-in GC gauges. Hooks must not
    raise; exceptions are swallowed so one bad hook cannot kill the
    sampler thread. *)

val remove_sample : string -> unit

val sample_now : unit -> unit
(** Run one tick synchronously on the calling thread: refresh the
    built-in gauges, run every hook, bump [runtime.samples]. Used by
    tests and by one-shot scrapes that want fresh data without a
    background thread. *)

val start : ?interval_s:float -> unit -> unit
(** Start the background sampler thread (idempotent — a second call
    only updates the interval). Default interval 5s. The thread sleeps
    in small slices so {!stop} takes effect promptly even with long
    intervals. *)

val stop : unit -> unit
(** Signal the sampler thread to exit and join it. No-op if not
    running. *)

val running : unit -> bool
