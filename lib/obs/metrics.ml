type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

(* Log-scale buckets: 4 per octave. Bucket 0 is the underflow bucket
   (observations <= 0); bucket [i > 0] covers values whose
   [round (log2 v * 4)] equals [i - bucket_offset], i.e. its
   representative is [2 ** ((i - bucket_offset) / 4)]. The range spans
   roughly 1e-10 .. 1e9 before clamping to the end buckets. *)
let buckets_per_octave = 4
let bucket_offset = 136 (* covers log2 v down to -135/4 ~ 1e-10 *)
let n_buckets = 264

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let get_or_create name make describe =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.add registry name m;
        ignore describe;
        m)

let counter name =
  match
    get_or_create name (fun () -> Counter { c_name = name; c = Atomic.make 0 }) "counter"
  with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Obs.Metrics.counter: %S is not a counter" name)

let incr c = ignore (Atomic.fetch_and_add c.c 1)
let add c n = ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c

(* A single atomic store, so the counter is never torn — but it is
   still a destructive write: an [incr] that lands between the
   caller's read and this store is overwritten. That is inherent to
   "set" semantics; callers that need lose-nothing draining use
   [exchange_counter] and reason about the returned value instead. *)
let set_counter c n = Atomic.set c.c n
let exchange_counter c n = Atomic.exchange c.c n

let gauge name =
  match
    get_or_create name (fun () -> Gauge { g_name = name; g = Atomic.make 0. }) "gauge"
  with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Obs.Metrics.gauge: %S is not a gauge" name)

let set_gauge g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let atomic_add_float a x =
  let rec go () =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. x)) then go ()
  in
  go ()

let histogram name =
  match
    get_or_create name
      (fun () ->
        Histogram
          {
            h_name = name;
            h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0.;
          })
      "histogram"
  with
  | Histogram h -> h
  | _ ->
    invalid_arg (Printf.sprintf "Obs.Metrics.histogram: %S is not a histogram" name)

let bucket_of v =
  if v <= 0. || Float.is_nan v then 0
  else
    let i =
      bucket_offset
      + int_of_float
          (Float.round (Float.log2 v *. float_of_int buckets_per_octave))
    in
    if i < 1 then 1 else if i >= n_buckets then n_buckets - 1 else i

let representative i =
  if i = 0 then 0.
  else
    Float.pow 2.
      (float_of_int (i - bucket_offset) /. float_of_int buckets_per_octave)

let observe h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  atomic_add_float h.h_sum v

let histogram_count h = Atomic.get h.h_count

let histogram_bucket_total h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.h_buckets

let histogram_sum h = Atomic.get h.h_sum

let percentile h q =
  let count = histogram_count h in
  if count <= 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (Float.of_int count *. q +. 0.999999) in
      if r < 1 then 1 else if r > count then count else r
    in
    let rec go i cum =
      if i >= n_buckets then representative (n_buckets - 1)
      else
        let cum = cum + Atomic.get h.h_buckets.(i) in
        if cum >= rank then representative i else go (i + 1) cum
    in
    go 0 0
  end

(* Reset by draining, not by storing zeros. The old implementation
   ([Atomic.set b 0] on every cell, then [h_count := 0]) had a
   read-modify-write window: an [observe] racing the reset could bump
   a bucket that had already been zeroed and then have its count
   increment wiped — leaving the bucket total permanently above the
   count, which skews every later percentile. Exchanging each bucket
   to zero and subtracting exactly the drained total from the count
   closes that window: a racing observe either lands before the
   exchange (drained, and its count increment cancels against the
   subtraction) or after it (survives the reset whole). The count may
   read transiently negative mid-race — [percentile] treats that as
   empty — but once the racing observes retire,
   [histogram_count h = histogram_bucket_total h] again. The sum is a
   single exchange: exact when quiescent, weakly consistent (off by
   at most the racing observations) under concurrency. *)
let reset_histogram h =
  let removed = ref 0 in
  Array.iter (fun b -> removed := !removed + Atomic.exchange b 0) h.h_buckets;
  ignore (Atomic.fetch_and_add h.h_count (- !removed));
  ignore (Atomic.exchange h.h_sum 0.)

let snapshot () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) registry []
      |> List.sort (fun a b ->
             let name = function
               | Counter c -> c.c_name
               | Gauge g -> g.g_name
               | Histogram h -> h.h_name
             in
             compare (name a) (name b)))

let dump ppf () =
  let ms = snapshot () in
  Format.fprintf ppf "@[<v>metrics:";
  List.iter
    (fun m ->
      match m with
      | Counter c ->
        Format.fprintf ppf "@,  %-42s %d" c.c_name (counter_value c)
      | Gauge g -> Format.fprintf ppf "@,  %-42s %g" g.g_name (gauge_value g)
      | Histogram h ->
        Format.fprintf ppf
          "@,  %-42s count %d  sum %g  p50 %g  p90 %g  p99 %g" h.h_name
          (histogram_count h) (histogram_sum h) (percentile h 0.5)
          (percentile h 0.9) (percentile h 0.99))
    ms;
  Format.fprintf ppf "@]"

let to_json () =
  let ms = snapshot () in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) m ->
        match m with
        | Counter c -> ((c.c_name, Json.Int (counter_value c)) :: cs, gs, hs)
        | Gauge g -> (cs, (g.g_name, Json.Float (gauge_value g)) :: gs, hs)
        | Histogram h ->
          ( cs,
            gs,
            ( h.h_name,
              Json.Obj
                [
                  ("count", Json.Int (histogram_count h));
                  ("sum", Json.Float (histogram_sum h));
                  ("p50", Json.Float (percentile h 0.5));
                  ("p90", Json.Float (percentile h 0.9));
                  ("p99", Json.Float (percentile h 0.99));
                ] )
            :: hs ))
      ([], [], []) ms
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev histograms));
    ]

(* ---- Prometheus text exposition (format 0.0.4) ---------------------- *)

(* Metric names in this registry are dotted ("server.latency.check_s");
   Prometheus names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Map every
   invalid character to '_' and prefix an underscore when the first
   character is a digit. The mapping is not injective in general, but
   the registry's dotted names collide only if they already differed
   solely by separator, which we do not do. *)
let prometheus_name name =
  let n = String.length name in
  let b = Buffer.create (n + 1) in
  String.iteri
    (fun i ch ->
      let ok =
        (ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || ch = '_' || ch = ':'
        || (ch >= '0' && ch <= '9')
      in
      if i = 0 && ch >= '0' && ch <= '9' then Buffer.add_char b '_';
      Buffer.add_char b (if ok then ch else '_'))
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let to_prometheus () =
  let b = Buffer.create 4096 in
  List.iter
    (fun m ->
      match m with
      | Counter c ->
        let name = prometheus_name c.c_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
        Buffer.add_string b (Printf.sprintf "%s %d\n" name (counter_value c))
      | Gauge g ->
        let name = prometheus_name g.g_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string b
          (Printf.sprintf "%s %s\n" name (prom_float (gauge_value g)))
      | Histogram h ->
        let name = prometheus_name h.h_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
        (* Read the buckets once and derive every series from that one
           snapshot, so the exposition is internally consistent even if
           observes race the scrape: the +Inf bucket, [_count], and the
           per-bucket cumulative sums all agree. *)
        let counts = Array.map Atomic.get h.h_buckets in
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            if n > 0 then begin
              cum := !cum + n;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                   (prom_float (representative i))
                   !cum)
            end)
          counts;
        let total = Array.fold_left ( + ) 0 counts in
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name total);
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" name (prom_float (histogram_sum h)));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name total))
    (snapshot ());
  Buffer.contents b

let reset_all () =
  List.iter
    (function
      | Counter c -> set_counter c 0
      | Gauge g -> set_gauge g 0.
      | Histogram h -> reset_histogram h)
    (snapshot ())
