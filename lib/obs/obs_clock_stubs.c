/* Monotonic clock for Obs.Clock.
 *
 * OCaml's bundled Unix library exposes only gettimeofday (epoch time,
 * subject to NTP steps), so the monotonic source is a one-line C stub
 * over clock_gettime(CLOCK_MONOTONIC). The native entry point takes and
 * returns unboxed doubles and performs no OCaml allocation, which keeps
 * Obs.Clock.now usable on the tracing fast path.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

double mdqvtr_clock_monotonic(value unit)
{
  (void)unit;
#if !defined(_WIN32) && defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
#endif
  /* Fallback: epoch time. Only reached on platforms without a
     monotonic clock; still usable, just not adjustment-proof. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return (double)tv.tv_sec + 1e-6 * (double)tv.tv_usec;
  }
}

CAMLprim value mdqvtr_clock_monotonic_byte(value unit)
{
  return caml_copy_double(mdqvtr_clock_monotonic(unit));
}
