(** Strict parser for the Prometheus text exposition format 0.0.4, as
    produced by {!Metrics.to_prometheus}.

    Used by [qvtr top] to digest a scraped [/metrics] body and by the
    tests to validate the exposition: every sample line must be
    [name\{labels\} value] with a parseable float value, every [# TYPE]
    line must name a known kind, and unknown line shapes are errors
    rather than being skipped. *)

type sample = {
  s_name : string;  (** full sample name, e.g. [server_latency_check_s_bucket] *)
  s_labels : (string * string) list;
  s_value : float;
}

type t = {
  types : (string * string) list;  (** metric name -> "counter" | "gauge" | "histogram" *)
  samples : sample list;  (** in exposition order *)
}

val parse : string -> (t, string) result
(** Strict parse of a full exposition body. Fails on malformed sample
    lines, malformed or unknown [# TYPE] lines, or unparseable values;
    [# HELP] and blank lines are permitted and ignored. *)

val value : t -> ?labels:(string * string) list -> string -> float option
(** First sample with this exact name and (order-insensitive) label
    set. [labels] defaults to []. *)

val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option

val buckets : t -> string -> (float * int) list
(** Cumulative [le] buckets of histogram [name] (samples named
    [name_bucket]), as [(upper_bound, cumulative_count)] in exposition
    order; [+Inf] is [infinity]. *)

val histogram_count : t -> string -> int option
val histogram_sum : t -> string -> float option

val percentile : t -> string -> float -> float option
(** Client-side percentile over the cumulative buckets: the upper
    bound of the first bucket whose cumulative count reaches
    [ceil (q * count)]. [None] if the histogram is absent or empty. *)
