(** Process-global metrics registry: named counters, gauges and
    histograms.

    Replaces the ad-hoc [Atomic.t] cells that used to be scattered
    through [Sat.Solver], [Relog.Translate], [Echo.Repair]/[Engine] and
    [Incr.Session]. Metrics are created once (get-or-create by name,
    typically at module initialization) and updated lock-free from any
    domain; {!dump} renders one snapshot of the whole stack, which the
    CLI prints under [--stats].

    Histograms are log-bucketed (4 buckets per octave, ~19% relative
    resolution) over positive values; observations ≤ 0 land in a
    dedicated underflow bucket whose representative is 0. Percentiles
    are exact whenever the observed values are bucket representatives
    (powers of [2^(1/4)]), which the tests exploit. *)

type counter
type gauge
type histogram

(** {2 Counters} *)

val counter : string -> counter
(** Get or create. @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set_counter : counter -> int -> unit
(** For targeted resets ([Sat.Solver.reset_global_stats]). *)

(** {2 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in [\[0, 1\]]: the representative value
    of the bucket containing the [ceil (q * count)]-th smallest
    observation; [0.] on an empty histogram. *)

val reset_histogram : histogram -> unit

(** {2 Snapshot} *)

val dump : Format.formatter -> unit -> unit
(** Human-readable snapshot of every registered metric, sorted by
    name: counter values, gauge values, histogram
    count/sum/p50/p90/p99. *)

val to_json : unit -> Json.t

val reset_all : unit -> unit
(** Zero every metric (bench isolation between experiments). *)
