(** Process-global metrics registry: named counters, gauges and
    histograms.

    Replaces the ad-hoc [Atomic.t] cells that used to be scattered
    through [Sat.Solver], [Relog.Translate], [Echo.Repair]/[Engine] and
    [Incr.Session]. Metrics are created once (get-or-create by name,
    typically at module initialization) and updated lock-free from any
    domain; {!dump} renders one snapshot of the whole stack, which the
    CLI prints under [--stats].

    Histograms are log-bucketed (4 buckets per octave, ~19% relative
    resolution) over positive values; observations ≤ 0 land in a
    dedicated underflow bucket whose representative is 0. Percentiles
    are exact whenever the observed values are bucket representatives
    (powers of [2^(1/4)]), which the tests exploit. *)

type counter
type gauge
type histogram

(** {2 Counters} *)

val counter : string -> counter
(** Get or create. @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set_counter : counter -> int -> unit
(** For targeted resets ([Sat.Solver.reset_global_stats]). A single
    atomic store — never torn — but destructive: a concurrent {!incr}
    landing between the caller's read and this store is overwritten.
    Use {!exchange_counter} when no increment may be lost. *)

val exchange_counter : counter -> int -> int
(** [exchange_counter c n] atomically stores [n] and returns the
    previous value; the lose-nothing variant of {!set_counter} for
    drain-style resets. *)

(** {2 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_bucket_total : histogram -> int
(** Sum over all buckets. Equals {!histogram_count} when the histogram
    is quiescent; may differ transiently while observes or a
    {!reset_histogram} are in flight (the invariant is restored once
    they retire — the concurrent-reset test relies on this). *)

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in [\[0, 1\]]: the representative value
    of the bucket containing the [ceil (q * count)]-th smallest
    observation; [0.] on an empty histogram. *)

val reset_histogram : histogram -> unit
(** Drain-based reset, safe against concurrent {!observe}: each bucket
    is atomically exchanged to zero and exactly the drained total is
    subtracted from the count, so no racing observation is half-wiped.
    The count may read negative for an instant mid-race; once racing
    observes retire, [histogram_count h = histogram_bucket_total h]
    again. *)

(** {2 Snapshot} *)

val dump : Format.formatter -> unit -> unit
(** Human-readable snapshot of every registered metric, sorted by
    name: counter values, gauge values, histogram
    count/sum/p50/p90/p99. *)

val to_json : unit -> Json.t

val prometheus_name : string -> string
(** Sanitize a dotted registry name into a valid Prometheus metric
    name: characters outside [[a-zA-Z0-9_:]] become ['_'], and a
    leading digit gains an ['_'] prefix. *)

val to_prometheus : unit -> string
(** Render the whole registry in Prometheus text exposition format
    0.0.4: one [# TYPE] line per metric, counters and gauges as single
    samples, histograms as cumulative [_bucket{le="..."}] series
    (bucket representatives as [le] bounds, empty buckets elided) plus
    [_bucket{le="+Inf"}], [_sum] and [_count]. The [+Inf] bucket and
    [_count] are derived from one bucket snapshot, so they always
    agree even when a scrape races live observations. *)

val reset_all : unit -> unit
(** Zero every metric (bench isolation between experiments). *)
