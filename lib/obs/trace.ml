type event = {
  ph : [ `Begin | `End | `Instant | `Counter ];
  name : string;
  ts : float;
  tid : int;
  id : int;
  parent : int;
  args : (string * Json.t) list;
}

let dummy_event =
  { ph = `Instant; name = ""; ts = 0.; tid = 0; id = 0; parent = 0; args = [] }

(* Per-domain buffer. Only the owning domain ever mutates it (recording
   is lock-free); [events]/[clear] read other domains' buffers and are
   documented as quiescent-only. *)
type buf = {
  b_tid : int;
  mutable b_events : event array;
  mutable b_len : int;
  mutable b_stack : int list;  (* open span ids, innermost first *)
  mutable b_ctx : int;  (* parent context installed by [with_context] *)
}

let enabled_flag = Atomic.make false
let next_id = Atomic.make 1
let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_events = Array.make 256 dummy_event;
          b_len = 0;
          b_stack = [];
          b_ctx = 0;
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let local_buf () = Domain.DLS.get buf_key

let push b e =
  let n = Array.length b.b_events in
  if b.b_len = n then begin
    let bigger = Array.make (2 * n) dummy_event in
    Array.blit b.b_events 0 bigger 0 n;
    b.b_events <- bigger
  end;
  b.b_events.(b.b_len) <- e;
  b.b_len <- b.b_len + 1

let set_enabled on = Atomic.set enabled_flag on
let enabled () = Atomic.get enabled_flag

let clear () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  List.iter (fun b -> b.b_len <- 0) bufs

type context = int

let null_context = 0

let current () =
  if not (Atomic.get enabled_flag) then 0
  else
    let b = local_buf () in
    match b.b_stack with p :: _ -> p | [] -> b.b_ctx

let with_context ctx f =
  if ctx = 0 && not (Atomic.get enabled_flag) then f ()
  else begin
    let b = local_buf () in
    let old = b.b_ctx in
    b.b_ctx <- ctx;
    Fun.protect ~finally:(fun () -> b.b_ctx <- old) f
  end

let with_span ?args ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = local_buf () in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match b.b_stack with p :: _ -> p | [] -> b.b_ctx in
    let args = match args with None -> [] | Some mk -> mk () in
    push b
      { ph = `Begin; name; ts = Clock.now (); tid = b.b_tid; id; parent; args };
    b.b_stack <- id :: b.b_stack;
    Fun.protect
      ~finally:(fun () ->
        (match b.b_stack with _ :: rest -> b.b_stack <- rest | [] -> ());
        push b
          {
            ph = `End;
            name;
            ts = Clock.now ();
            tid = b.b_tid;
            id = 0;
            parent = 0;
            args = [];
          })
      f
  end

let instant ?args name =
  if Atomic.get enabled_flag then begin
    let b = local_buf () in
    let parent = match b.b_stack with p :: _ -> p | [] -> b.b_ctx in
    let args = match args with None -> [] | Some mk -> mk () in
    push b
      {
        ph = `Instant;
        name;
        ts = Clock.now ();
        tid = b.b_tid;
        id = 0;
        parent;
        args;
      }
  end

let counter name values =
  if Atomic.get enabled_flag then begin
    let b = local_buf () in
    push b
      {
        ph = `Counter;
        name;
        ts = Clock.now ();
        tid = b.b_tid;
        id = 0;
        parent = 0;
        args = List.map (fun (k, v) -> (k, Json.Float v)) values;
      }
  end

let events () =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let all =
    List.concat_map
      (fun b -> Array.to_list (Array.sub b.b_events 0 b.b_len))
      bufs
  in
  List.stable_sort (fun a b -> Float.compare a.ts b.ts) all

(* ------------------------------------------------------------------ *)
(* Sinks.                                                              *)

let us t0 ts = (ts -. t0) *. 1e6

let chrome_event t0 e =
  let base =
    [
      ("pid", Json.Int 1); ("tid", Json.Int e.tid); ("ts", Json.Float (us t0 e.ts));
    ]
  in
  match e.ph with
  | `Begin ->
    let args =
      ("span", Json.Int e.id)
      :: (if e.parent <> 0 then [ ("parent", Json.Int e.parent) ] else [])
      @ e.args
    in
    Json.Obj
      (("ph", Json.String "B") :: ("name", Json.String e.name)
      :: ("args", Json.Obj args) :: base)
  | `End -> Json.Obj (("ph", Json.String "E") :: base)
  | `Instant ->
    Json.Obj
      (("ph", Json.String "i") :: ("s", Json.String "t")
      :: ("name", Json.String e.name) :: ("args", Json.Obj e.args) :: base)
  | `Counter ->
    Json.Obj
      (("ph", Json.String "C") :: ("name", Json.String e.name)
      :: ("args", Json.Obj e.args) :: base)

let metadata_events tids =
  Json.Obj
    [
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("name", Json.String "process_name");
      ("args", Json.Obj [ ("name", Json.String "mdqvtr") ]);
    ]
  :: List.concat_map
       (fun tid ->
         [
           Json.Obj
             [
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("name", Json.String "thread_name");
               ( "args",
                 Json.Obj
                   [
                     ( "name",
                       Json.String
                         (if tid = 0 then "main" else Printf.sprintf "domain %d" tid)
                     );
                   ] );
             ];
           Json.Obj
             [
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("name", Json.String "thread_sort_index");
               ("args", Json.Obj [ ("sort_index", Json.Int tid) ]);
             ];
         ])
       tids

(* Flow arrows for cross-domain parent handoffs: when a span's parent
   lives on another track, emit a start/finish flow pair so Perfetto
   draws the arrow from submitter to worker. *)
let flow_events t0 evs =
  let span_tid = Hashtbl.create 64 in
  List.iter (fun e -> if e.ph = `Begin then Hashtbl.replace span_tid e.id e.tid) evs;
  List.concat_map
    (fun e ->
      if e.ph <> `Begin || e.parent = 0 then []
      else
        match Hashtbl.find_opt span_tid e.parent with
        | Some ptid when ptid <> e.tid ->
          let common =
            [
              ("cat", Json.String "handoff");
              ("id", Json.Int e.id);
              ("name", Json.String "handoff");
              ("pid", Json.Int 1);
              ("ts", Json.Float (us t0 e.ts));
            ]
          in
          [
            Json.Obj (("ph", Json.String "s") :: ("tid", Json.Int ptid) :: common);
            Json.Obj
              (("ph", Json.String "f") :: ("bp", Json.String "e")
              :: ("tid", Json.Int e.tid) :: common);
          ]
        | _ -> [])
    evs

let export_chrome path =
  let evs = events () in
  let t0 = match evs with [] -> 0. | e :: _ -> e.ts in
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.tid) evs)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"traceEvents\":[";
      let first = ref true in
      let emit j =
        if !first then first := false else output_string oc ",\n";
        output_string oc (Json.to_string j)
      in
      List.iter emit (metadata_events tids);
      List.iter emit (flow_events t0 evs);
      List.iter (fun e -> emit (chrome_event t0 e)) evs;
      output_string oc "]}\n")

let jsonl_event e =
  let ph =
    match e.ph with `Begin -> "B" | `End -> "E" | `Instant -> "i" | `Counter -> "C"
  in
  Json.Obj
    [
      ("ph", Json.String ph);
      ("name", Json.String e.name);
      ("ts", Json.Float e.ts);
      ("tid", Json.Int e.tid);
      ("span", Json.Int e.id);
      ("parent", Json.Int e.parent);
      ("args", Json.Obj e.args);
    ]

let export_jsonl path =
  let evs = events () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (Json.to_string (jsonl_event e));
          output_char oc '\n')
        evs)

(* MDQVTR_TRACE_LOG=FILE: trace the whole process and flush a JSONL
   event log at exit. *)
let () =
  match Sys.getenv_opt "MDQVTR_TRACE_LOG" with
  | Some path when path <> "" ->
    set_enabled true;
    at_exit (fun () -> try export_jsonl path with Sys_error _ -> ())
  | _ -> ()
