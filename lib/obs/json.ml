type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity; clamp to null (never hit in practice) *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6f" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Strict recursive-descent parser.                                    *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             (hex_digit s.[!pos] lsl 12)
             lor (hex_digit s.[!pos + 1] lsl 8)
             lor (hex_digit s.[!pos + 2] lsl 4)
             lor hex_digit s.[!pos + 3]
           in
           pos := !pos + 4;
           (* UTF-8 encode the code point (BMP only; surrogate pairs
              never appear in our own output). *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ();
        incr d
      done;
      if !d = 0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function
  | List xs -> xs
  | _ -> []

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None

let to_bool_opt = function
  | Bool b -> Some b
  | _ -> None
