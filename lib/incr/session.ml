module Ident = Mdl.Ident
module Model = Mdl.Model
module Value = Mdl.Value
module Edit = Mdl.Edit

type fact = {
  f_rel : Ident.t;
  f_atoms : Ident.t array;
}

type step_stats = {
  wall : float;
  solver_calls : int;
  conflicts : int;
  propagations : int;
  decisions : int;
  translated : bool;
  translate_s : float;
}

type verdict = {
  v_relation : Ident.t;
  v_direction : Qvtr.Ast.dependency;
  v_holds : bool;
  v_blame : fact list;
}

type check_report = {
  consistent : bool;
  verdicts : verdict list;
  check_stats : step_stats;
}

type repair = {
  r_models : (Ident.t * Model.t) list;
  r_relational_distance : int;
  r_edit_distance : int;
}

type repair_outcome =
  | Already_consistent
  | Cannot_restore
  | Repaired of repair list

type repair_report = {
  outcome : repair_outcome;
  repair_stats : step_stats;
}

(* ------------------------------------------------------------------ *)
(* Internal state                                                      *)

(* A primary variable of the translation: the tuple it decides and the
   parameter owning its relation. *)
type prim = {
  p_param : Ident.t;
  p_rel : Ident.t;
  p_tuple : Relog.Rel.Tuple.t;
  p_var : Sat.Lit.var;
}

(* A target primary with its repair apparatus: [t_ref] is the
   reference variable assumptions pin to the current model, [t_diff]
   is defined as [p_var XOR t_ref] and feeds the totalizer. *)
type tprim = {
  tp : prim;
  t_ref : Sat.Lit.var;
  t_diff : Sat.Lit.var;
}

type check_state = {
  cf : Relog.Finder.t;
  dirs : (Ident.t * Qvtr.Ast.dependency * Sat.Lit.t) list;
  cprims : prim array;
  cvar_fact : (Sat.Lit.var, Ident.t * Relog.Rel.Tuple.t) Hashtbl.t;
}

type repair_state = {
  rf : Relog.Finder.t;
  ntprims : prim array;  (* primaries of frozen parameters *)
  tprims : tprim array;  (* primaries of target parameters *)
  card : Sat.Cardinality.t;
  chains : (Ident.t * Sat.Lit.t array) list;
      (* per target parameter: slack symmetry pair guards, ordinal order *)
  struct_guards : Sat.Lit.t list;
      (* conformance of the targets, guarded like everything else so
         the one shared finder serves both check and repair *)
}

(* One encoding generation: everything keyed by the exact bounds (the
   bound models, the value universe, the slack pool). Generations are
   cached so a re-encode that returns to a previously seen state
   revives its guard literals and primary pins without re-translation
   — the shared finder's memoized lowering and the Tseitin cache make
   the revival {!Relog.Finder.rebind} rebuild only matrices, not
   clauses. *)
type generation = {
  g_enc : Qvtr.Encode.t;
  g_sem : Qvtr.Semantics.t;
  g_bounds : Relog.Bounds.t;
  mutable g_check : check_state option;
  mutable g_repair : repair_state option;
}

(* Per-parameter slack accounting of the current generation. *)
type pstate = {
  mutable consumed : Model.obj_id list;  (* newest first *)
  mutable nconsumed : int;
  atom_of_created : (Model.obj_id, Ident.t) Hashtbl.t;
}

type t = {
  trans : Qvtr.Ast.transformation;
  metamodels : (Ident.t * Mdl.Metamodel.t) list;
  info : Qvtr.Typecheck.info;
  mode : Qvtr.Semantics.mode option;
  unroll : int option;
  tgts : Echo.Target.t;
  budget : int;
  headroom : int;
  symmetry : bool;
      (* assume the guarded slack-symmetry chains on repair solves.
         The session path pins repairs by assumption, so the general
         lex-leader SBPs of {!Relog.Symmetry} are unsound here; the
         per-parameter slack chains are the symmetry breaking sessions
         get, and [symmetry = false] (the server's --no-sbp) drops
         even those. *)
  mutable gen : generation;
  cache : (string, generation) Hashtbl.t;
  (* The one finder (translation + solver) serving every generation:
     re-encodes delta-rebind it instead of building a new one. *)
  mutable fd : Relog.Finder.t option;
  (* The longest universe ever encoded: the base of every re-encode,
     so all session universes form one prefix-compatible chain and
     index-keyed translation state survives every rebind. *)
  mutable all_atoms : Ident.t list;
  (* p_var -> (t_ref, t_diff): the XOR apparatus is per primary
     variable, and primary variables persist across rebinds, so
     generations share it. *)
  xors : (Sat.Lit.var, Sat.Lit.var * Sat.Lit.var) Hashtbl.t;
  mutable cur : (Ident.t * Model.t) list;
  mutable values : Value.Set.t;
  mutable pstates : pstate Ident.Map.t;
  mutable fact_cache : (Relog.Rel.Tuple.t, unit) Hashtbl.t Ident.Map.t Ident.Map.t;
      (* param -> relation -> present tuples; absent entry = dirty *)
  mutable rebuild_pending : bool;
  mutable nrebuilds : int;
  mutable translations : int;
}

let models t = t.cur
let targets t = t.tgts
let slack_budget t = t.budget
let value_universe t = Value.Set.elements t.values
let rebuilds t = t.nrebuilds

let model_of t p =
  match List.find_opt (fun (q, _) -> Ident.equal q p) t.cur with
  | Some (_, m) -> m
  | None -> invalid_arg (Printf.sprintf "Session: unknown parameter %s" (Ident.name p))

let set_model t p m =
  t.cur <- List.map (fun (q, old) -> if Ident.equal q p then (q, m) else (q, old)) t.cur

let pstate_of t p =
  match Ident.Map.find_opt p t.pstates with
  | Some ps -> ps
  | None -> invalid_arg (Printf.sprintf "Session: unknown parameter %s" (Ident.name p))

let fresh_pstates params =
  List.fold_left
    (fun acc p ->
      Ident.Map.add p
        { consumed = []; nconsumed = 0; atom_of_created = Hashtbl.create 8 }
        acc)
    Ident.Map.empty params

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let zero_stats =
  {
    Sat.Solver.decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt = 0;
    reduces = 0;
    solves = 0;
    solve_time = 0.0;
  }

let solver_totals t =
  match t.fd with
  | Some fd -> Sat.Solver.stats (Relog.Finder.solver fd)
  | None -> zero_stats

let translate_seconds t =
  match t.fd with
  | Some fd ->
    (Relog.Translate.stats (Relog.Finder.translation fd))
      .Relog.Translate.translate_time
  | None -> 0.0

let snapshot t =
  (Sat.Telemetry.now (), solver_totals t, t.translations, translate_seconds t)

let finish t (t0, s0, tr0, ts0) =
  let s1 = solver_totals t in
  {
    wall = Sat.Telemetry.now () -. t0;
    solver_calls = s1.Sat.Solver.solves - s0.Sat.Solver.solves;
    conflicts = s1.Sat.Solver.conflicts - s0.Sat.Solver.conflicts;
    propagations = s1.Sat.Solver.propagations - s0.Sat.Solver.propagations;
    decisions = s1.Sat.Solver.decisions - s0.Sat.Solver.decisions;
    translated = t.translations > tr0;
    translate_s = translate_seconds t -. ts0;
  }

(* ------------------------------------------------------------------ *)
(* Generations and the translation cache                               *)

(* The cache key spells out exactly what the bounds depend on: the
   transformation, the target set, the slack pool and the precise
   state (models and value universe) being encoded. *)
let fingerprint t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Ident.name t.trans.Qvtr.Ast.t_name);
  Buffer.add_char b '\n';
  List.iter
    (fun (n, _) ->
      Buffer.add_string b (Ident.name n);
      Buffer.add_char b ' ')
    t.metamodels;
  Buffer.add_char b '\n';
  Ident.Set.iter
    (fun p ->
      Buffer.add_string b (Ident.name p);
      Buffer.add_char b ' ')
    t.tgts;
  Buffer.add_string b (Printf.sprintf "\nslack %d+%d\n" t.budget t.headroom);
  List.iter
    (fun (p, m) ->
      Buffer.add_string b (Ident.name p);
      Buffer.add_char b '\x01';
      Buffer.add_string b (Mdl.Serialize.model_to_string m);
      Buffer.add_char b '\x02')
    t.cur;
  Value.Set.iter
    (fun v ->
      Buffer.add_string b (Value.to_string v);
      Buffer.add_char b '\x03')
    t.values;
  Buffer.contents b

let build_generation ~trans ~metamodels ~models ~values ~slack ?(base = [])
    ?mode ?unroll info =
  let ( let* ) = Result.bind in
  let* enc =
    Qvtr.Encode.create ~transformation:trans ~metamodels ~models
      ~extra_values:(Value.Set.elements values) ~slack_objects:slack ~base ()
  in
  match Qvtr.Semantics.create ?mode ?unroll enc info with
  | sem ->
    let bounds =
      Qvtr.Encode.bounds enc ~targets:(Ident.Set.of_list (List.map fst models))
    in
    Ok
      {
        g_enc = enc;
        g_sem = sem;
        g_bounds = bounds;
        g_check = None;
        g_repair = None;
      }
  | exception Qvtr.Semantics.Compile_error msg -> Error msg

(* Flush a pending re-encode: key the current state, revive a cached
   generation or build a fresh one, and reset the slack accounting
   (the new encoding owns every current object directly). *)
let m_cache_hits = Obs.Metrics.counter "incr.translation_cache_hits"
let m_cache_misses = Obs.Metrics.counter "incr.translation_cache_misses"
let m_rebuilds = Obs.Metrics.counter "incr.rebuilds"

let ensure_generation t =
  if not t.rebuild_pending then Ok ()
  else begin
    let key = fingerprint t in
    let ( let* ) = Result.bind in
    let* g =
      match Hashtbl.find_opt t.cache key with
      | Some g ->
        (* State recurrence: the fingerprinted encoding is revived
           without re-translation. *)
        Obs.Metrics.incr m_cache_hits;
        Obs.Trace.instant "session.cache_hit"
          ~args:(fun () -> [ ("cache", Obs.Json.String "translation") ]);
        Ok g
      | None ->
        Obs.Metrics.incr m_cache_misses;
        Obs.Trace.instant "session.cache_miss"
          ~args:(fun () -> [ ("cache", Obs.Json.String "translation") ]);
        let* g =
          Obs.Trace.with_span ~name:"session.rebuild" (fun () ->
              build_generation ~trans:t.trans ~metamodels:t.metamodels
                ~models:t.cur ~values:t.values ~slack:(t.budget + t.headroom)
                ~base:t.all_atoms ?mode:t.mode ?unroll:t.unroll t.info)
        in
        (* The new universe extends the longest-ever one (base), so it
           is the new longest. *)
        t.all_atoms <- Relog.Rel.Universe.atoms (Qvtr.Encode.universe g.g_enc);
        Hashtbl.add t.cache key g;
        Ok g
    in
    Obs.Metrics.incr m_rebuilds;
    t.gen <- g;
    (* Delta-retranslate the shared finder: only relations whose
       bounds the re-encode changed are re-lowered; everything else —
       matrices, memoized circuits, guard literals, learnt clauses —
       carries over. *)
    (match t.fd with
    | Some fd -> ignore (Relog.Finder.rebind fd g.g_bounds : int)
    | None -> ());
    (* The encoding may have picked up values the accumulator missed
       (it never does today, but keep the invariant by construction). *)
    t.values <-
      List.fold_left (fun acc v -> Value.Set.add v acc) t.values
        (Qvtr.Encode.values g.g_enc);
    t.pstates <- fresh_pstates (List.map fst t.cur);
    t.fact_cache <- Ident.Map.empty;
    t.rebuild_pending <- false;
    t.nrebuilds <- t.nrebuilds + 1;
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)

let open_session ?mode ?unroll ?(slack_budget = 2) ?(headroom = 6)
    ?(extra_values = []) ?(symmetry = true) ~transformation ~metamodels
    ~models ~targets () =
  let ( let* ) = Result.bind in
  if slack_budget < 0 || headroom < 0 then
    Error "Session.open_session: slack_budget and headroom must be >= 0"
  else
    let params =
      List.map
        (fun (p : Qvtr.Ast.param) -> p.Qvtr.Ast.par_name)
        transformation.Qvtr.Ast.t_params
    in
    let* () = Echo.Target.validate ~params targets in
    let* info =
      match Qvtr.Typecheck.check transformation ~metamodels with
      | Ok info -> Ok info
      | Error errs ->
        Error
          (String.concat "; "
             (List.map
                (fun e -> Format.asprintf "%a" Qvtr.Typecheck.pp_error e)
                errs))
    in
    let seed =
      List.fold_left
        (fun acc v -> Value.Set.add v acc)
        Value.Set.empty extra_values
    in
    let* gen =
      Obs.Trace.with_span ~name:"session.build" (fun () ->
          build_generation ~trans:transformation ~metamodels ~models
            ~values:seed ~slack:(slack_budget + headroom) ?mode
            ?unroll info)
    in
    let t =
      {
        trans = transformation;
        metamodels;
        info;
        mode;
        unroll;
        tgts = targets;
        budget = slack_budget;
        headroom;
        symmetry;
        gen;
        cache = Hashtbl.create 4;
        fd = None;
        all_atoms =
          Relog.Rel.Universe.atoms (Qvtr.Encode.universe gen.g_enc);
        xors = Hashtbl.create 64;
        cur = models;
        values =
          List.fold_left
            (fun acc v -> Value.Set.add v acc)
            seed
            (Qvtr.Encode.values gen.g_enc);
        pstates = fresh_pstates params;
        fact_cache = Ident.Map.empty;
        rebuild_pending = false;
        nrebuilds = 0;
        translations = 0;
      }
    in
    Hashtbl.add t.cache (fingerprint t) gen;
    Ok t

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)

(* Relation names are namespaced "<param>$..."; recover the owner. *)
let param_of_rel r =
  match String.index_opt (Ident.name r) '$' with
  | None -> None
  | Some i -> Some (Ident.make (String.sub (Ident.name r) 0 i))

let facts_of t p =
  match Ident.Map.find_opt p t.fact_cache with
  | Some f -> f
  | None ->
    let ps = pstate_of t p in
    let pairs =
      Qvtr.Encode.model_facts t.gen.g_enc
        ~atom_of_id:(fun id -> Hashtbl.find_opt ps.atom_of_created id)
        ~param:p (model_of t p)
    in
    let f =
      List.fold_left
        (fun acc (r, tuple) ->
          let tbl =
            match Ident.Map.find_opt r acc with
            | Some tbl -> tbl
            | None -> Hashtbl.create 64
          in
          Hashtbl.replace tbl tuple ();
          Ident.Map.add r tbl acc)
        Ident.Map.empty pairs
    in
    t.fact_cache <- Ident.Map.add p f t.fact_cache;
    f

let present t (pr : prim) =
  match Ident.Map.find_opt pr.p_rel (facts_of t pr.p_param) with
  | Some tbl -> Hashtbl.mem tbl pr.p_tuple
  | None -> false

(* Primaries in a stable order chosen for assumption-prefix trail
   reuse: class-extent tuples (flipped only by object creation or
   deletion) come before feature tuples (flipped by any attribute or
   reference edit), so the common small-edit step preserves at least
   the whole class-extent prefix on the solver trail. *)
let prim_order a b =
  let is_ft r =
    match String.index_opt (Ident.name r) '$' with
    | Some i ->
      String.length (Ident.name r) > i + 3
      && String.sub (Ident.name r) (i + 1) 3 = "ft$"
    | None -> false
  in
  let c = compare (is_ft a.p_rel) (is_ft b.p_rel) in
  if c <> 0 then c
  else
    let c = String.compare (Ident.name a.p_rel) (Ident.name b.p_rel) in
    if c <> 0 then c else compare a.p_tuple b.p_tuple

let collect_prims trans =
  let a =
    Relog.Translate.fold_primaries trans
      (fun r tuple v acc ->
        match param_of_rel r with
        | Some p -> { p_param = p; p_rel = r; p_tuple = tuple; p_var = v } :: acc
        | None -> acc)
      []
    |> Array.of_list
  in
  Array.sort prim_order a;
  a

(* ------------------------------------------------------------------ *)
(* The check finder                                                    *)

let finder_cache_event ~hit which =
  Obs.Trace.instant
    (if hit then "session.cache_hit" else "session.cache_miss")
    ~args:(fun () -> [ ("cache", Obs.Json.String which) ])

(* The one long-lived finder. Created lazily over the current
   generation's bounds; every later generation reaches it through
   {!Relog.Finder.rebind} in [ensure_generation]. *)
let ensure_finder t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fd = Relog.Finder.create t.gen.g_bounds in
    t.fd <- Some fd;
    fd

let ensure_check t =
  let g = t.gen in
  match g.g_check with
  | Some c ->
    finder_cache_event ~hit:true "check_finder";
    c
  | None ->
    finder_cache_event ~hit:false "check_finder";
    t.translations <- t.translations + 1;
    let cf = ensure_finder t in
    let dirs = Qvtr.Semantics.top_formulas g.g_sem in
    let dirs =
      List.map
        (fun (r, d, f) -> (r.Qvtr.Ast.r_name, d, Relog.Finder.guard cf f))
        dirs
    in
    let cprims = collect_prims (Relog.Finder.translation cf) in
    let cvar_fact = Hashtbl.create (Array.length cprims) in
    Array.iter
      (fun pr -> Hashtbl.replace cvar_fact pr.p_var (pr.p_rel, pr.p_tuple))
      cprims;
    let c = { cf; dirs; cprims; cvar_fact } in
    g.g_check <- Some c;
    c

(* Pins in [cprims] order (class extents first): trail reuse across
   solves depends on assumption lists sharing a literal-for-literal
   prefix, so the order must be stable call to call. *)
let check_pins t cs =
  Array.fold_right
    (fun pr acc ->
      (if present t pr then Sat.Lit.pos pr.p_var else Sat.Lit.neg_of pr.p_var)
      :: acc)
    cs.cprims []

let universe_atom t idx = Relog.Rel.Universe.atom (Qvtr.Encode.universe t.gen.g_enc) idx

let blame_of t cs guard =
  let solver = Relog.Finder.solver cs.cf in
  let core = Sat.Solver.minimize_core solver in
  List.filter_map
    (fun l ->
      if Sat.Lit.var l = Sat.Lit.var guard then None
      else
        match Hashtbl.find_opt cs.cvar_fact (Sat.Lit.var l) with
        | Some (r, tuple) ->
          Some { f_rel = r; f_atoms = Array.map (universe_atom t) tuple }
        | None -> None)
    core

let m_rechecks = Obs.Metrics.counter "incr.rechecks"

let recheck ?(blame = false) t =
  Obs.Metrics.incr m_rechecks;
  Obs.Trace.with_span ~name:"session.recheck" @@ fun () ->
  let snap = snapshot t in
  let ( let* ) = Result.bind in
  let* () = ensure_generation t in
  try
    let cs = ensure_check t in
    let pins = check_pins t cs in
    let solver = Relog.Finder.solver cs.cf in
    let verdicts =
      List.map
        (fun (rel, dep, guard) ->
          (* guard last: consecutive directions differ only in their
             final assumption, so the pin prefix stays on the trail *)
          let assumptions = pins @ [ guard ] in
          match
            Obs.Trace.with_span ~name:"solve"
              ~args:(fun () ->
                [
                  ("backend", Obs.Json.String "session.check");
                  ("relation", Obs.Json.String (Ident.name rel));
                  ("assumptions", Obs.Json.Int (List.length assumptions));
                ])
              (fun () -> Sat.Solver.solve ~assumptions solver)
          with
          | Sat.Solver.Sat ->
            { v_relation = rel; v_direction = dep; v_holds = true; v_blame = [] }
          | Sat.Solver.Unsat ->
            let v_blame = if blame then blame_of t cs guard else [] in
            { v_relation = rel; v_direction = dep; v_holds = false; v_blame })
        cs.dirs
    in
    Ok
      {
        consistent = List.for_all (fun v -> v.v_holds) verdicts;
        verdicts;
        check_stats = finish t snap;
      }
  with Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* The repair finder                                                   *)

(* The repair apparatus rides on the same finder as the check: the
   direction formulas (consistency) are already guarded there, the
   target conformance and slack symmetry formulas are guarded here,
   and every repair solve assumes all of them. Nothing is asserted
   unconditionally, so check and repair coexist in one solver and the
   whole translation is shared. *)
let ensure_repair t =
  let g = t.gen in
  (* The check state first: repair assumes its direction guards and
     reuses its primary census. *)
  let cs = ensure_check t in
  match g.g_repair with
  | Some r ->
    finder_cache_event ~hit:true "repair_finder";
    r
  | None ->
    finder_cache_event ~hit:false "repair_finder";
    t.translations <- t.translations + 1;
    let rf = cs.cf in
    let tgt_list = Ident.Set.elements t.tgts in
    let chains =
      List.map
        (fun p ->
          ( p,
            if not t.symmetry then [||]
            else
              Array.of_list
                (List.map (Relog.Finder.guard rf)
                   (Qvtr.Encode.slack_symmetry_formulas g.g_enc ~param:p)) ))
        tgt_list
    in
    let struct_guards =
      List.concat_map
        (fun p ->
          List.map (Relog.Finder.guard rf)
            (Qvtr.Encode.structural_formulas ~symmetry:false g.g_enc ~param:p))
        tgt_list
    in
    let solver = Relog.Finder.solver rf in
    let prims = cs.cprims in
    let ntprims =
      Array.of_list
        (List.filter
           (fun pr -> not (Ident.Set.mem pr.p_param t.tgts))
           (Array.to_list prims))
    in
    let tprims =
      Array.of_list
        (List.filter_map
           (fun pr ->
             if not (Ident.Set.mem pr.p_param t.tgts) then None
             else begin
               let v = pr.p_var in
               let r, d =
                 match Hashtbl.find_opt t.xors v with
                 | Some rd -> rd
                 | None ->
                   let r = Sat.Solver.new_var solver in
                   let d = Sat.Solver.new_var solver in
                   (* d <-> v XOR r *)
                   Sat.Solver.add_clause solver
                     [ Sat.Lit.neg_of v; Sat.Lit.pos r; Sat.Lit.pos d ];
                   Sat.Solver.add_clause solver
                     [ Sat.Lit.pos v; Sat.Lit.neg_of r; Sat.Lit.pos d ];
                   Sat.Solver.add_clause solver
                     [ Sat.Lit.neg_of v; Sat.Lit.neg_of r; Sat.Lit.neg_of d ];
                   Sat.Solver.add_clause solver
                     [ Sat.Lit.pos v; Sat.Lit.pos r; Sat.Lit.neg_of d ];
                   Hashtbl.replace t.xors v (r, d);
                   (r, d)
               in
               Some { tp = pr; t_ref = r; t_diff = d }
             end)
           (Array.to_list prims))
    in
    let card =
      Sat.Cardinality.build solver
        (List.map (fun tp -> Sat.Lit.pos tp.t_diff) (Array.to_list tprims))
    in
    let r = { rf; ntprims; tprims; card; chains; struct_guards } in
    g.g_repair <- Some r;
    r

(* Atoms no repair may populate in the current state: originally bound
   objects since deleted, consumed slack atoms whose object was
   deleted, and slack atoms beyond the fresh window (the window keeps
   the search space identical to a from-scratch run with
   [slack_objects = budget]). *)
let dead_atoms t p =
  let enc = t.gen.g_enc in
  let ps = pstate_of t p in
  let m = model_of t p in
  let tbl = Hashtbl.create 16 in
  let add a = Hashtbl.replace tbl (Qvtr.Encode.atom_index enc a) () in
  List.iter
    (fun id ->
      if not (Model.mem m id) then add (Qvtr.Encode.obj_atom_name p id))
    (Model.objects (Qvtr.Encode.model_of_param enc p));
  let consumed = Array.of_list (List.rev ps.consumed) in
  List.iteri
    (fun k a ->
      if k < Array.length consumed then begin
        if not (Model.mem m consumed.(k)) then add a
      end
      else if k >= Array.length consumed + t.budget then add a)
    (Qvtr.Encode.slack_atom_names enc p);
  tbl

let repair_pins t rs =
  let dead =
    List.fold_left
      (fun acc p -> Ident.Map.add p (dead_atoms t p) acc)
      Ident.Map.empty
      (Ident.Set.elements t.tgts)
  in
  (* Assembled back to front so the final list runs: frozen-model
     pins, target reference/dead pins, chain guards — a stable order,
     so the whole list is a reusable trail prefix across the ladder. *)
  let acc =
    List.concat_map
      (fun (p, guards) ->
        (* Symmetry applies to the unconsumed window only: consumed
           atoms are ordinary objects now and must be deletable
           independently. *)
        let n = (pstate_of t p).nconsumed in
        let out = ref [] in
        Array.iteri (fun k gd -> if k >= n then out := gd :: !out) guards;
        List.rev !out)
      rs.chains
  in
  let acc =
    Array.fold_right
      (fun tp acc ->
        let dtbl = Ident.Map.find tp.tp.p_param dead in
        if Array.exists (Hashtbl.mem dtbl) tp.tp.p_tuple then
          Sat.Lit.neg_of tp.tp.p_var :: Sat.Lit.neg_of tp.t_ref :: acc
        else
          (if present t tp.tp then Sat.Lit.pos tp.t_ref
           else Sat.Lit.neg_of tp.t_ref)
          :: acc)
      rs.tprims acc
  in
  Array.fold_right
    (fun pr acc ->
      (if present t pr then Sat.Lit.pos pr.p_var
       else Sat.Lit.neg_of pr.p_var)
      :: acc)
    rs.ntprims acc

let consistent_now cs pins =
  let solver = Relog.Finder.solver cs.cf in
  let guards = List.map (fun (_, _, gd) -> gd) cs.dirs in
  match Sat.Solver.solve ~assumptions:(pins @ guards) solver with
  | Sat.Solver.Sat -> true
  | Sat.Solver.Unsat -> false

let max_id m = List.fold_left max (-1) (Model.objects m)

let decode_repair t inst ~distance =
  let enc = t.gen.g_enc in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (p, cur) :: rest ->
      if not (Ident.Set.mem p t.tgts) then go ((p, cur) :: acc) rest
      else begin
        let ps = pstate_of t p in
        let atom_ids =
          Hashtbl.fold (fun id a acc -> (a, id) :: acc) ps.atom_of_created []
        in
        match
          Qvtr.Encode.decode_model enc ~atom_ids ~first_fresh:(max_id cur + 1)
            inst ~param:p
        with
        | Error msg -> Error msg
        | Ok m ->
          if Mdl.Conformance.check m <> [] then Error "non-conformant"
          else go ((p, m) :: acc) rest
      end
  in
  match go [] t.cur with
  | Error msg -> Error msg
  | Ok repaired ->
    let edit =
      List.fold_left
        (fun acc (p, m) ->
          if Ident.Set.mem p t.tgts then
            acc + Mdl.Distance.delta (model_of t p) m
          else acc)
        0 repaired
    in
    Ok
      {
        r_models = repaired;
        r_relational_distance = distance;
        r_edit_distance = edit;
      }

let repair_key reps =
  String.concat "\x00"
    (List.map
       (fun (p, m) -> Ident.name p ^ "\x01" ^ Mdl.Serialize.model_to_string m)
       reps)

let dedup_sort reps =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun r ->
      let key = repair_key r.r_models in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    reps
  |> List.sort (fun a b ->
         String.compare (repair_key a.r_models) (repair_key b.r_models))

let m_rerepairs = Obs.Metrics.counter "incr.rerepairs"

let rerepair ?(limit = 16) t =
  Obs.Metrics.incr m_rerepairs;
  Obs.Trace.with_span ~name:"session.rerepair"
    ~args:(fun () -> [ ("limit", Obs.Json.Int limit) ])
  @@ fun () ->
  let snap = snapshot t in
  let ( let* ) = Result.bind in
  let* () = ensure_generation t in
  try
    let cs = ensure_check t in
    let pins = check_pins t cs in
    if consistent_now cs pins then
      Ok { outcome = Already_consistent; repair_stats = finish t snap }
    else begin
      let rs = ensure_repair t in
      (* Stable assumption order for trail reuse across the ladder:
         fact/reference pins and chain guards, then the guarded
         constraint set (conformance + all directions). *)
      let dir_guards = List.map (fun (_, _, gd) -> gd) cs.dirs in
      let base = repair_pins t rs @ rs.struct_guards @ dir_guards in
      let scope = Relog.Finder.new_scope rs.rf in
      let solver = Relog.Finder.solver rs.rf in
      let total = Sat.Cardinality.count rs.card in
      (* Enumerate conformant instances at distance k; non-conformant
         ones are blocked (scoped to this call) without counting. *)
      let collect_at k =
        let rec go acc n =
          if n >= limit then acc
          else
            match
              Relog.Finder.solve
                ~assumptions:
                  (base @ Sat.Cardinality.at_most rs.card k @ [ scope ])
                rs.rf
            with
            | Relog.Finder.Unsat -> acc
            | Relog.Finder.Sat inst -> (
              let distance =
                Array.fold_left
                  (fun d tp ->
                    if Sat.Solver.value solver tp.t_diff then d + 1 else d)
                  0 rs.tprims
              in
              let decoded = decode_repair t inst ~distance in
              Relog.Finder.block ~scope rs.rf;
              match decoded with
              | Error _ -> go acc n
              | Ok rep -> go (rep :: acc) (n + 1))
        in
        go [] 0
      in
      let rec at_distance k =
        if k > total then Cannot_restore
        else
          match collect_at k with
          | [] -> at_distance (k + 1)
          | reps -> Repaired (dedup_sort reps)
      in
      let outcome = at_distance 0 in
      Ok { outcome; repair_stats = finish t snap }
    end
  with Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Edits                                                               *)

let atom_known t a =
  match Qvtr.Encode.atom_index t.gen.g_enc a with
  | _ -> true
  | exception Invalid_argument _ -> false

let apply_edits t batch =
  Obs.Trace.with_span ~name:"session.apply_edits"
    ~args:(fun () ->
      [
        ("parameters", Obs.Json.Int (List.length batch));
        ( "edits",
          Obs.Json.Int
            (List.fold_left (fun n (_, es) -> n + List.length es) 0 batch) );
      ])
  @@ fun () ->
  (* Validate the whole batch functionally first: on error, nothing
     below mutates the session. *)
  let rec validate acc = function
    | [] -> Ok (List.rev acc)
    | (p, edits) :: rest -> (
      match List.find_opt (fun (q, _) -> Ident.equal q p) t.cur with
      | None -> Error (Printf.sprintf "unknown parameter %s" (Ident.name p))
      | Some (_, m) -> (
        match Edit.apply_script m edits with
        | Error e -> Error (Printf.sprintf "%s: %s" (Ident.name p) e)
        | Ok m' -> validate ((p, m') :: acc) rest))
  in
  match validate [] batch with
  | Error e -> Error e
  | Ok updated ->
    List.iter (fun (p, m) -> set_model t p m) updated;
    List.iter
      (fun (p, _) -> t.fact_cache <- Ident.Map.remove p t.fact_cache)
      updated;
    List.iter
      (fun (p, edits) ->
        let ps = pstate_of t p in
        List.iter
          (fun e ->
            match e with
            | Edit.Add_object { id; _ } ->
              if not t.rebuild_pending then begin
                let known =
                  atom_known t (Qvtr.Encode.obj_atom_name p id)
                  || Hashtbl.mem ps.atom_of_created id
                in
                if not known then begin
                  if ps.nconsumed >= t.headroom then t.rebuild_pending <- true
                  else begin
                    let a =
                      List.nth
                        (Qvtr.Encode.slack_atom_names t.gen.g_enc p)
                        ps.nconsumed
                    in
                    Hashtbl.replace ps.atom_of_created id a;
                    ps.consumed <- id :: ps.consumed;
                    ps.nconsumed <- ps.nconsumed + 1
                  end
                end
              end
            | Edit.Set_attr { after; _ } ->
              List.iter
                (fun v ->
                  if not (Value.Set.mem v t.values) then begin
                    t.values <- Value.Set.add v t.values;
                    t.rebuild_pending <- true
                  end)
                after
            | Edit.Delete_object _ | Edit.Add_ref _ | Edit.Del_ref _ -> ())
          edits)
      batch;
    Ok ()

let commit t rep =
  let batch =
    List.filter_map
      (fun (p, m) ->
        if not (Ident.Set.mem p t.tgts) then None
        else
          match Mdl.Diff.script (model_of t p) m with
          | [] -> None
          | edits -> Some (p, edits))
      rep.r_models
  in
  apply_edits t batch

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)

let pp_fact ppf f =
  Format.fprintf ppf "%a(%s)" Ident.pp f.f_rel
    (String.concat ", "
       (List.map Ident.name (Array.to_list f.f_atoms)))

let pp_step_stats ppf s =
  Format.fprintf ppf
    "@[<h>%.4fs; %d solves; %d conflicts; %d propagations; %d decisions%s@]"
    s.wall s.solver_calls s.conflicts s.propagations s.decisions
    (if s.translated then Printf.sprintf "; translated (%.4fs)" s.translate_s
     else "")
