(** Edit-script replay: drive a {!Session} through a sequence of model
    snapshots and measure each step against a from-scratch baseline.

    A replay script is a text file of labelled snapshot blocks:

    {v
    == step rename feature
    model fm : FM { ... }

    == step drop config entry
    model cf1 : CF { ... }
    v}

    Each block holds one or more models in {!Mdl.Serialize} concrete
    syntax; parameters not re-stated in a block are unchanged. The
    block is diffed against the running state with {!Mdl.Diff.script},
    which makes the step's edit batch — so a script is just "what the
    models looked like after each save", the natural editor-session
    trace.

    {!run} replays the steps twice per step: on the long-lived session
    ([apply_edits] + [recheck], the warm path) and on a session opened
    from scratch over the same post-edit models (paying translation
    and cold solves — the work every [qvtr check] invocation does
    today). Both report {!Session.step_stats}, which is what E9 in
    [bench/] records to [BENCH_3.json]. *)

type step = {
  s_label : string;
  s_batch : (Mdl.Ident.t * Mdl.Edit.t list) list;
}

type step_record = {
  sr_label : string;
  sr_edits : int;  (** edit operations in the step's batch *)
  sr_rebuilt : bool;  (** the live session had to re-encode *)
  sr_session_consistent : bool;
  sr_scratch_consistent : bool;
  sr_verdicts_match : bool;
      (** per-direction verdicts of warm and scratch recheck agree *)
  sr_session : Session.step_stats;  (** warm [recheck] *)
  sr_scratch : Session.step_stats;  (** from-scratch open + [recheck] *)
}

val steps_of_snapshots :
  base:(Mdl.Ident.t * Mdl.Model.t) list ->
  (string * (Mdl.Ident.t * Mdl.Model.t) list) list ->
  step list
(** Turn labelled snapshots into diff-derived steps, starting from
    [base]. Parameters absent from a snapshot are unchanged; an empty
    diff yields an empty batch (the step is kept, with no edits). *)

val blocks : string -> ((string * int * string) list, string) result
(** Split a replay script into [(label, marker_line, body)] blocks:
    lines starting with [==] open a block, the rest of the marker line
    is the label, and [marker_line] is the marker's 1-based line in
    the script. Each body is newline-padded to its file position, so
    parse errors raised on it report absolute script-file lines. The
    transformation server's [apply_edits] verb and the [qvtr session]
    CLI both feed these bodies through the same snapshot-diff path.
    Errors (e.g. text before the first marker) carry line numbers. *)

val parse :
  metamodels:Mdl.Metamodel.t list ->
  base:(Mdl.Ident.t * Mdl.Model.t) list ->
  string ->
  (step list, string) result
(** Parse a replay script (see above): blocks separated by lines
    starting with [==], the rest of the marker line being the step
    label. Every error — stray text before the first marker, a
    malformed model block, an unknown declaration keyword — is
    reported with its 1-based line (and, for model-syntax errors,
    column) in the script file. *)

val run :
  ?mode:Qvtr.Semantics.mode ->
  ?slack_budget:int ->
  ?headroom:int ->
  transformation:Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  targets:Echo.Target.t ->
  step list ->
  (step_record list, string) result
(** Replay the steps. The session's first [recheck] (building its
    translation) happens before step 1 and is not recorded — records
    compare steady-state warm rechecks against full from-scratch
    rechecks on identical models. *)
