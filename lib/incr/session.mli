(** Incremental consistency-maintenance sessions.

    A session holds a parsed transformation, a cache of translations
    keyed on the exact (metamodels, bounds) they encode, and
    persistent backend solvers. Model {e facts} — which tuples the
    current models contain — are never asserted: every solve pins them
    through solver assumptions over the frozen encoding, so an edit
    batch is just a different assumption set and re-checking after an
    edit re-uses everything the solver already learnt (clauses, VSIDS
    activity, saved phases).

    One finder (translation + solver) serves the whole session.
    Every formula — the top directional checks, the targets'
    structural conformance, the slack symmetry chains — is translated
    to a guard literal over one shared, memoized lowering
    ({!Relog.Translate}); [recheck] solves once per direction under
    the fact pins plus that direction's guard, and on violation the
    solver's unsat core — minimized with {!Sat.Solver.minimize_core}
    — names the {e blame set} of model facts. [rerepair] reuses the
    very same translation: it defines one reference/difference
    variable pair per target primary (the difference variables feed a
    totalizer) and runs the least-change distance ladder purely
    through assumptions: fact pins for frozen models, reference pins
    for targets, the conformance and direction guards, cardinality
    bounds, and a per-call scope literal that retracts the call's
    blocking clauses afterwards.

    A re-encode (new value, slack exhaustion) does {e delta
    retranslation}: the new universe extends the old one
    prefix-compatibly, the finder is {!Relog.Finder.rebind}-ed, and
    only relations whose bounds actually changed are re-lowered —
    matrices, memoized circuits, guard literals and learnt clauses
    all carry over. Returning to a previously seen state revives that
    generation's guards outright.

    Object creation is served from the encoding's slack atoms: each
    session keeps [slack_budget + headroom] fresh atoms per parameter,
    consumes one per created object, and always exposes exactly
    [slack_budget] unconsumed atoms to the repair search — the same
    search space a from-scratch {!Echo.Engine} run with
    [slack_objects = slack_budget] sees. Edits the frozen universe
    cannot express (a brand-new attribute value, slack exhaustion)
    trigger a re-encode over the current models; re-encodes hit the
    translation cache when they return to a previously seen state. *)

type t

type fact = {
  f_rel : Mdl.Ident.t;  (** relation name, e.g. [m$ft$name] *)
  f_atoms : Mdl.Ident.t array;  (** tuple, as universe atom names *)
}
(** One model fact: a tuple the current models assert. *)

type step_stats = {
  wall : float;  (** seconds inside the operation *)
  solver_calls : int;
  conflicts : int;
  propagations : int;
  decisions : int;
  translated : bool;
      (** whether the operation had to (re)translate — [false] on the
          warm assumption-flip path *)
  translate_s : float;
      (** wall seconds the operation spent inside the translation
          layer (lowering + CNF); 0 on the warm path, and small even
          on re-encodes thanks to delta retranslation *)
}
(** Solver-effort delta attributed to one [recheck]/[rerepair] call
    (read off the session's shared finder, including translation-time
    propagation when a build was needed). *)

type verdict = {
  v_relation : Mdl.Ident.t;
  v_direction : Qvtr.Ast.dependency;
  v_holds : bool;
  v_blame : fact list;
      (** when violated and blame was requested: a minimal set of
          model facts that together with the direction's semantics is
          already inconsistent *)
}

type check_report = {
  consistent : bool;
  verdicts : verdict list;  (** same order as {!Qvtr.Check.run} *)
  check_stats : step_stats;
}

type repair = {
  r_models : (Mdl.Ident.t * Mdl.Model.t) list;
      (** full binding: targets replaced, others as current *)
  r_relational_distance : int;
  r_edit_distance : int;
}

type repair_outcome =
  | Already_consistent
  | Cannot_restore
  | Repaired of repair list
      (** all minimal repairs (up to the limit), deduplicated and in
          canonical order — the same menu {!Echo.Engine.enforce_all}
          computes from scratch *)

type repair_report = {
  outcome : repair_outcome;
  repair_stats : step_stats;
}

val open_session :
  ?mode:Qvtr.Semantics.mode ->
  ?unroll:int ->
  ?slack_budget:int ->
  ?headroom:int ->
  ?extra_values:Mdl.Value.t list ->
  ?symmetry:bool ->
  transformation:Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  targets:Echo.Target.t ->
  unit ->
  (t, string) result
(** [slack_budget] (default 2) is the number of fresh objects a single
    repair may create — {!Echo.Engine}'s [slack_objects]. [headroom]
    (default 6) is how many object creations the session absorbs by
    edits before the universe must be re-encoded. [extra_values]
    (default none) seeds the value accumulator beyond what the models
    mention — the revival path of a durable session snapshot passes
    the evicted session's {!value_universe} here, so a resurrected
    session searches exactly the space the evicted one did.
    [symmetry] (default true) assumes the guarded slack-symmetry
    chains on repair solves; sessions pin repairs by assumption, so
    the general lex-leader SBPs of {!Relog.Symmetry} are unsound here
    and the chains are the symmetry breaking sessions get —
    [~symmetry:false] (the server's [--no-sbp]) drops even those,
    enumerating every slack-permutation variant. Solvers
    are built lazily: the first [recheck]/[rerepair] pays the
    translation. *)

val models : t -> (Mdl.Ident.t * Mdl.Model.t) list
(** The current (post-edit) models. *)

val targets : t -> Echo.Target.t
val slack_budget : t -> int

val value_universe : t -> Mdl.Value.t list
(** Every value with an atom in the session universe. A from-scratch
    run over the current models reproduces the session's search space
    exactly when given these as [extra_values] (and [slack_budget] as
    [slack_objects]) — the equivalence the test suite checks. *)

val rebuilds : t -> int
(** Number of re-encodes so far (0 right after [open_session]). *)

val solver_totals : t -> Sat.Solver.stats
(** Cumulative solver effort of the session's shared solver. *)

val apply_edits : t -> (Mdl.Ident.t * Mdl.Edit.t list) list -> (unit, string) result
(** Apply one edit batch, each script against the named parameter's
    current model. All-or-nothing: on [Error] no model changed. No
    solver work happens here — facts are re-pinned at the next solve;
    only an edit the universe cannot express schedules a re-encode
    (performed lazily with the next solve and counted in its
    {!step_stats}). *)

val recheck : ?blame:bool -> t -> (check_report, string) result
(** Re-check consistency of the current models: one assumption-solve
    per top directional check on the warm check finder. With
    [blame] (default [false]), each violated direction carries a
    minimized fact blame set (extra solves). Verdicts agree with
    {!Qvtr.Check.run} on the current models. *)

val rerepair : ?limit:int -> t -> (repair_report, string) result
(** Least-change repair of the current models over the session's
    target set: the distance ladder and minimal-repair enumeration
    (up to [limit], default 16) run as assumption solves on the warm
    repair finder. The outcome (distance and canonical repair menu)
    matches a from-scratch {!Echo.Engine.enforce_all} over the
    current models with aligned [extra_values]/[slack_objects]. The
    session's models are not changed — see {!commit}. *)

val commit : t -> repair -> (unit, string) result
(** Make a repair the session's current state, routed through
    {!apply_edits} of the {!Mdl.Diff} script so slack accounting and
    re-encode triggers apply as for any other edit. *)

val pp_fact : Format.formatter -> fact -> unit
val pp_step_stats : Format.formatter -> step_stats -> unit
