module Ident = Mdl.Ident
module Model = Mdl.Model

type step = {
  s_label : string;
  s_batch : (Ident.t * Mdl.Edit.t list) list;
}

type step_record = {
  sr_label : string;
  sr_edits : int;
  sr_rebuilt : bool;
  sr_session_consistent : bool;
  sr_scratch_consistent : bool;
  sr_verdicts_match : bool;
  sr_session : Session.step_stats;
  sr_scratch : Session.step_stats;
}

let steps_of_snapshots ~base snapshots =
  let step_of state (label, snap) =
    let batch =
      List.filter_map
        (fun (p, after) ->
          match List.assoc_opt p state with
          | None -> None
          | Some before -> (
            match Mdl.Diff.script before after with
            | [] -> None
            | edits -> Some (p, edits)))
        snap
    in
    let state =
      List.map
        (fun (p, m) ->
          match List.assoc_opt p snap with Some m' -> (p, m') | None -> (p, m))
        state
    in
    (state, { s_label = label; s_batch = batch })
  in
  let _, steps = List.fold_left_map step_of base snapshots in
  steps

(* Blocks are delimited by lines starting with "=="; the marker line's
   remainder is the label. Each body is padded with newlines up to its
   position in the file, so line/col coordinates in any parse error
   raised inside a block are absolute script-file positions — the
   serializer's lexer counts from line 1 of whatever string it gets. *)
let blocks text =
  let lines = String.split_on_char '\n' text in
  let _, rev_blocks, err =
    List.fold_left
      (fun (lineno, blocks, err) line ->
        if err <> None then (lineno + 1, blocks, err)
        else if String.length line >= 2 && String.sub line 0 2 = "==" then begin
          let label =
            String.trim (String.sub line 2 (String.length line - 2))
          in
          let buf = Buffer.create 256 in
          for _ = 1 to lineno do
            Buffer.add_char buf '\n'
          done;
          (lineno + 1, (label, lineno, buf) :: blocks, err)
        end
        else begin
          match blocks with
          | (_, _, buf) :: _ ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n';
            (lineno + 1, blocks, err)
          | [] ->
            if String.trim line = "" then (lineno + 1, blocks, err)
            else
              ( lineno + 1,
                blocks,
                Some
                  (Printf.sprintf
                     "replay script: line %d: text before the first == step \
                      marker"
                     lineno) )
        end)
      (1, [], None) lines
  in
  match err with
  | Some e -> Error e
  | None ->
    Ok
      (List.rev_map
         (fun (label, line, buf) -> (label, line, Buffer.contents buf))
         rev_blocks)

let parse ~metamodels ~base text =
  let ( let* ) = Result.bind in
  let* bs = blocks text in
  let* rev_snapshots =
    List.fold_left
      (fun acc (label, line, body) ->
        let* acc = acc in
        match Mdl.Serialize.parse_models metamodels body with
        | Ok ms -> Ok ((label, List.map (fun m -> (Model.name m, m)) ms) :: acc)
        | Error e ->
          Error
            (Printf.sprintf "replay script: step %S (marker at line %d): %s"
               label line e))
      (Ok []) bs
  in
  Ok (steps_of_snapshots ~base (List.rev rev_snapshots))

let verdicts_match (a : Session.check_report) (b : Session.check_report) =
  List.length a.Session.verdicts = List.length b.Session.verdicts
  && List.for_all2
       (fun (x : Session.verdict) (y : Session.verdict) ->
         Ident.equal x.Session.v_relation y.Session.v_relation
         && x.Session.v_direction = y.Session.v_direction
         && x.Session.v_holds = y.Session.v_holds)
       a.Session.verdicts b.Session.verdicts

let run ?mode ?slack_budget ?headroom ~transformation ~metamodels ~models
    ~targets steps =
  let ( let* ) = Result.bind in
  let open_fresh models =
    Session.open_session ?mode ?slack_budget ?headroom ~transformation
      ~metamodels ~models ~targets ()
  in
  let* sess = open_fresh models in
  (* warm-up: pay the session's own translation before step 1 *)
  let* _ = Session.recheck sess in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | st :: rest ->
      let rebuilds0 = Session.rebuilds sess in
      let* () = Session.apply_edits sess st.s_batch in
      let* warm = Session.recheck sess in
      (* the from-scratch baseline: a cold session over the same
         post-edit models, paying translation plus cold solves *)
      let* scratch_sess = open_fresh (Session.models sess) in
      let* scratch = Session.recheck scratch_sess in
      let record =
        {
          sr_label = st.s_label;
          sr_edits =
            List.fold_left (fun n (_, es) -> n + List.length es) 0 st.s_batch;
          sr_rebuilt = Session.rebuilds sess > rebuilds0;
          sr_session_consistent = warm.Session.consistent;
          sr_scratch_consistent = scratch.Session.consistent;
          sr_verdicts_match = verdicts_match warm scratch;
          sr_session = warm.Session.check_stats;
          sr_scratch = scratch.Session.check_stats;
        }
      in
      go (record :: acc) rest
  in
  go [] steps
