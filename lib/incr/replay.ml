module Ident = Mdl.Ident
module Model = Mdl.Model

type step = {
  s_label : string;
  s_batch : (Ident.t * Mdl.Edit.t list) list;
}

type step_record = {
  sr_label : string;
  sr_edits : int;
  sr_rebuilt : bool;
  sr_session_consistent : bool;
  sr_scratch_consistent : bool;
  sr_verdicts_match : bool;
  sr_session : Session.step_stats;
  sr_scratch : Session.step_stats;
}

let steps_of_snapshots ~base snapshots =
  let step_of state (label, snap) =
    let batch =
      List.filter_map
        (fun (p, after) ->
          match List.assoc_opt p state with
          | None -> None
          | Some before -> (
            match Mdl.Diff.script before after with
            | [] -> None
            | edits -> Some (p, edits)))
        snap
    in
    let state =
      List.map
        (fun (p, m) ->
          match List.assoc_opt p snap with Some m' -> (p, m') | None -> (p, m))
        state
    in
    (state, { s_label = label; s_batch = batch })
  in
  let _, steps = List.fold_left_map step_of base snapshots in
  steps

let parse_exn ~metamodels ~base text =
  let lines = String.split_on_char '\n' text in
  (* blocks delimited by lines starting with "=="; the marker line's
     remainder is the label *)
  let blocks =
    List.fold_left
      (fun blocks line ->
        if String.length line >= 2 && String.sub line 0 2 = "==" then begin
          let label =
            String.trim (String.sub line 2 (String.length line - 2))
          in
          (label, Buffer.create 256) :: blocks
        end
        else begin
          (match blocks with
          | (_, buf) :: _ ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n'
          | [] ->
            if String.trim line <> "" then
              failwith "replay script: text before the first == marker");
          blocks
        end)
      [] lines
    |> List.rev
  in
  let snapshots =
    List.map
      (fun (label, buf) ->
        match Mdl.Serialize.parse_models metamodels (Buffer.contents buf) with
        | Ok ms -> (label, List.map (fun m -> (Model.name m, m)) ms)
        | Error e -> failwith (Printf.sprintf "step %S: %s" label e))
      blocks
  in
  steps_of_snapshots ~base snapshots

let parse ~metamodels ~base text =
  match parse_exn ~metamodels ~base text with
  | steps -> Ok steps
  | exception Failure msg -> Error msg

let verdicts_match (a : Session.check_report) (b : Session.check_report) =
  List.length a.Session.verdicts = List.length b.Session.verdicts
  && List.for_all2
       (fun (x : Session.verdict) (y : Session.verdict) ->
         Ident.equal x.Session.v_relation y.Session.v_relation
         && x.Session.v_direction = y.Session.v_direction
         && x.Session.v_holds = y.Session.v_holds)
       a.Session.verdicts b.Session.verdicts

let run ?mode ?slack_budget ?headroom ~transformation ~metamodels ~models
    ~targets steps =
  let ( let* ) = Result.bind in
  let open_fresh models =
    Session.open_session ?mode ?slack_budget ?headroom ~transformation
      ~metamodels ~models ~targets ()
  in
  let* sess = open_fresh models in
  (* warm-up: pay the session's own translation before step 1 *)
  let* _ = Session.recheck sess in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | st :: rest ->
      let rebuilds0 = Session.rebuilds sess in
      let* () = Session.apply_edits sess st.s_batch in
      let* warm = Session.recheck sess in
      (* the from-scratch baseline: a cold session over the same
         post-edit models, paying translation plus cold solves *)
      let* scratch_sess = open_fresh (Session.models sess) in
      let* scratch = Session.recheck scratch_sess in
      let record =
        {
          sr_label = st.s_label;
          sr_edits =
            List.fold_left (fun n (_, es) -> n + List.length es) 0 st.s_batch;
          sr_rebuilt = Session.rebuilds sess > rebuilds0;
          sr_session_consistent = warm.Session.consistent;
          sr_scratch_consistent = scratch.Session.consistent;
          sr_verdicts_match = verdicts_match warm scratch;
          sr_session = warm.Session.check_stats;
          sr_scratch = scratch.Session.check_stats;
        }
      in
      go (record :: acc) rest
  in
  go [] steps
