type rng = Random.State.t

let rng seed = Random.State.make [| seed |]
let feature_names n = List.init n (fun i -> Printf.sprintf "F%d" (i + 1))

let random_subset rng pool =
  List.filter (fun _ -> Random.State.bool rng) pool

let random_fm rng ~pool =
  let chosen = random_subset rng pool in
  Fm.feature_model ~name:"fm"
    (List.map (fun n -> (n, Random.State.int rng 3 = 0)) chosen)

let random_cf rng ~pool = Fm.configuration ~name:"cf" (random_subset rng pool)

let consistent_state rng ~k ~n_features =
  let pool = feature_names n_features in
  (* Partition: mandatory core / optional. *)
  let mandatory, optional =
    List.partition (fun _ -> Random.State.int rng 3 = 0) pool
  in
  let fm =
    Fm.feature_model ~name:"fm"
      (List.map (fun n -> (n, true)) mandatory
      @ List.map (fun n -> (n, false)) optional)
  in
  (* Each configuration: the mandatory core plus random optionals —
     but if every configuration picked the same optional it would
     violate MF, so ensure at least one configuration omits each
     chosen optional (drop it from a random configuration). *)
  let cf_extras = Array.init k (fun _ -> random_subset rng optional) in
  List.iter
    (fun opt ->
      let everywhere = Array.for_all (fun ex -> List.mem opt ex) cf_extras in
      if everywhere && k > 0 then begin
        let i = Random.State.int rng k in
        cf_extras.(i) <- List.filter (fun o -> o <> opt) cf_extras.(i)
      end)
    optional;
  let cfs =
    List.init k (fun i ->
        Fm.configuration
          ~name:(Printf.sprintf "cf%d" (i + 1))
          (mandatory @ cf_extras.(i)))
  in
  (cfs, fm)

type perturbation =
  | Add_mandatory_to_fm of string
  | Select_unknown of { cf_index : int; feature : string }
  | Select_everywhere of string
  | Drop_selection of { cf_index : int; feature : string }

let fresh_feature_name fm cfs =
  let used =
    List.map fst (Fm.fm_features fm)
    @ List.concat_map Fm.cf_features cfs
  in
  let rec go i =
    let cand = Printf.sprintf "X%d" i in
    if List.mem cand used then go (i + 1) else cand
  in
  go 1

let apply_perturbation (cfs, fm) = function
  | Add_mandatory_to_fm name ->
    let fm' =
      Fm.feature_model ~name:"fm" (Fm.fm_features fm @ [ (name, true) ])
    in
    (cfs, fm')
  | Select_unknown { cf_index; feature } ->
    let cfs' =
      List.mapi
        (fun i cf ->
          if i = cf_index then
            Fm.configuration ~name:(Printf.sprintf "cf%d" (i + 1))
              (Fm.cf_features cf @ [ feature ])
          else cf)
        cfs
    in
    (cfs', fm)
  | Select_everywhere feature ->
    let cfs' =
      List.mapi
        (fun i cf ->
          Fm.configuration ~name:(Printf.sprintf "cf%d" (i + 1))
            (List.sort_uniq compare (feature :: Fm.cf_features cf)))
        cfs
    in
    (cfs', fm)
  | Drop_selection { cf_index; feature } ->
    let cfs' =
      List.mapi
        (fun i cf ->
          if i = cf_index then
            Fm.configuration ~name:(Printf.sprintf "cf%d" (i + 1))
              (List.filter (fun n -> n <> feature) (Fm.cf_features cf))
          else cf)
        cfs
    in
    (cfs', fm)

let random_perturbation rng (cfs, fm) =
  let k = List.length cfs in
  let optional =
    List.filter_map (fun (n, m) -> if not m then Some n else None) (Fm.fm_features fm)
  in
  let mandatory =
    List.filter_map (fun (n, m) -> if m then Some n else None) (Fm.fm_features fm)
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let candidates =
    (if k > 0 then [ `Add ] else [])
    @ (if k > 0 then [ `Unknown ] else [])
    @ (if k > 0 && optional <> [] then [ `Everywhere ] else [])
    @ if k > 0 && mandatory <> [] then [ `Drop ] else []
  in
  if candidates = [] then None
  else
    match pick candidates with
    | `Add -> Some (Add_mandatory_to_fm (fresh_feature_name fm cfs))
    | `Unknown ->
      Some
        (Select_unknown
           { cf_index = Random.State.int rng k; feature = fresh_feature_name fm cfs })
    | `Everywhere -> Some (Select_everywhere (pick optional))
    | `Drop ->
      Some (Drop_selection { cf_index = Random.State.int rng k; feature = pick mandatory })

let all_subsets l =
  List.fold_left (fun acc x -> acc @ List.map (fun s -> x :: s) acc) [ [] ] l

let all_cfs pool =
  List.map (fun sub -> Fm.configuration ~name:"cf" sub) (all_subsets pool)

let all_fms pool =
  all_subsets pool
  |> List.concat_map (fun sub ->
         List.fold_left
           (fun acc name ->
             List.concat_map
               (fun flags -> [ (name, true) :: flags; (name, false) :: flags ])
               acc)
           [ [] ] sub)
  |> List.map (fun flags -> Fm.feature_model ~name:"fm" flags)
