type t = {
  s_name : string;
  s_description : string;
  cfs : Mdl.Model.t list;
  fm : Mdl.Model.t;
  restorable : string list list;
  not_restorable : string list list;
}

let new_mandatory_feature =
  {
    s_name = "new-mandatory-feature";
    s_description =
      "paper \u{00a7}3: a new mandatory feature N appears in the FM; updating a \
       single configuration cannot restore consistency, updating all of them can";
    cfs =
      [ Fm.configuration ~name:"cf1" [ "A" ]; Fm.configuration ~name:"cf2" [ "A" ] ];
    fm = Fm.feature_model ~name:"fm" [ ("A", true); ("N", true) ];
    restorable = [ [ "cf1"; "cf2" ]; [ "fm" ]; [ "cf1"; "cf2"; "fm" ] ];
    not_restorable = [ [ "cf1" ]; [ "cf2" ] ];
  }

let feature_made_mandatory =
  {
    s_name = "feature-made-mandatory";
    s_description =
      "paper \u{00a7}1: feature B was changed to mandatory in the FM; cf1 already \
       selects it, cf2 does not — only multi-target propagation to the \
       configurations (or reverting the FM) restores consistency";
    cfs =
      [
        Fm.configuration ~name:"cf1" [ "A"; "B" ];
        Fm.configuration ~name:"cf2" [ "A" ];
      ];
    fm = Fm.feature_model ~name:"fm" [ ("A", true); ("B", true) ];
    restorable = [ [ "cf2" ]; [ "fm" ]; [ "cf1"; "cf2" ] ];
    not_restorable = [ [ "cf1" ] ];
  }

let renamed_feature =
  {
    s_name = "renamed-feature";
    s_description =
      "paper \u{00a7}1: a mandatory feature was renamed A->A2 in cf1; repairing \
       everything else (fm and cf2) propagates the rename, while repairing cf1 \
       alone reverts it; cf2 alone cannot help because the FM still lacks A2";
    cfs =
      [
        Fm.configuration ~name:"cf1" [ "A2" ];
        Fm.configuration ~name:"cf2" [ "A" ];
      ];
    fm = Fm.feature_model ~name:"fm" [ ("A", true) ];
    restorable = [ [ "cf1" ]; [ "fm" ]; [ "fm"; "cf2" ]; [ "cf1"; "cf2"; "fm" ] ];
    not_restorable = [ [ "cf2" ] ];
  }

let unknown_selection =
  {
    s_name = "unknown-selection";
    s_description =
      "cf2 selects a feature X the FM does not declare (violates OF); adding X \
       to the FM or dropping the selection both work";
    cfs =
      [
        Fm.configuration ~name:"cf1" [ "A" ];
        Fm.configuration ~name:"cf2" [ "A"; "X" ];
      ];
    fm = Fm.feature_model ~name:"fm" [ ("A", true) ];
    restorable = [ [ "fm" ]; [ "cf2" ] ];
    not_restorable = [ [ "cf1" ] ];
  }

let all =
  [ new_mandatory_feature; feature_made_mandatory; renamed_feature; unknown_selection ]
