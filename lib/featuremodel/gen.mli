(** Workload generators for tests and benchmarks.

    Deterministic (seeded) generators of feature models,
    configurations, consistent multi-model states, and perturbations
    that make them inconsistent in controlled ways — the raw material
    of experiments E2/E3/E7/E8. *)

type rng = Random.State.t

val rng : int -> rng
(** Seeded generator state. *)

val feature_names : int -> string list
(** ["F1"; ...; "Fn"] — the closed name pool generators draw from. *)

val random_fm : rng -> pool:string list -> Mdl.Model.t
(** A feature model over a random subset of the pool, each feature
    mandatory with probability 1/3. *)

val random_cf : rng -> pool:string list -> Mdl.Model.t
(** A configuration selecting a random subset of the pool. *)

val consistent_state : rng -> k:int -> n_features:int -> Mdl.Model.t list * Mdl.Model.t
(** A consistent (per {!Fm.consistent}) state: a feature model over
    [n_features] features and [k] configurations, built by choosing a
    mandatory core plus per-configuration optional extras. *)

(** A controlled perturbation of a consistent state. *)
type perturbation =
  | Add_mandatory_to_fm of string
      (** the paper's §3 scenario: a new mandatory feature appears in
          the feature model *)
  | Select_unknown of { cf_index : int; feature : string }
      (** a configuration selects a feature the FM does not know
          (violates OF) *)
  | Select_everywhere of string
      (** all configurations select an optional feature (violates MF
          in the CFs→FM direction) *)
  | Drop_selection of { cf_index : int; feature : string }
      (** one configuration drops a mandatory feature *)

val apply_perturbation :
  Mdl.Model.t list * Mdl.Model.t -> perturbation -> Mdl.Model.t list * Mdl.Model.t

val random_perturbation : rng -> Mdl.Model.t list * Mdl.Model.t -> perturbation option
(** A perturbation applicable to the state ([None] when the state is
    too degenerate, e.g. nothing selected anywhere). *)

val all_subsets : 'a list -> 'a list list
(** Power set (small inputs; used for exhaustive small-scope
    experiments). *)

val all_fms : string list -> Mdl.Model.t list
(** Every feature model over subsets of the pool with every
    mandatory-flag assignment. *)

val all_cfs : string list -> Mdl.Model.t list
(** Every configuration over subsets of the pool. *)
