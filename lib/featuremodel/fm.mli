(** The paper's running example: feature models and configurations
    (Figure 1), with typed builders and the MF/OF transformation.

    A feature model ([FM]) is a set of named features, each optionally
    mandatory; a configuration ([CF]) is a set of selected features
    (by name). Consistency (paper §1):

    - [MF]: the features selected in {e every} configuration are
      exactly the mandatory features — with checking dependencies
      [{CF₁ CF₂ → FM, FM → CF₁, FM → CF₂}];
    - [OF]: every selected feature exists in the feature model — with
      dependencies [{CF₁ → FM, CF₂ → FM}]. *)

val fm_metamodel : Mdl.Metamodel.t
(** [metamodel FM { class Feature { attr name : string; attr
    mandatory : bool } }] — Figure 1, right. *)

val cf_metamodel : Mdl.Metamodel.t
(** [metamodel CF { class Feature { attr name : string } }] —
    Figure 1, left. *)

val metamodels : (Mdl.Ident.t * Mdl.Metamodel.t) list
(** Binding list for the engine APIs. *)

val feature_model : name:string -> (string * bool) list -> Mdl.Model.t
(** [feature_model ~name [("A", true); ...]]: features with their
    mandatory flag. *)

val configuration : name:string -> string list -> Mdl.Model.t
(** Selected feature names. *)

val fm_features : Mdl.Model.t -> (string * bool) list
(** Inverse of {!feature_model}, sorted by name. *)

val cf_features : Mdl.Model.t -> string list
(** Inverse of {!configuration}, sorted. *)

val transformation : k:int -> Qvtr.Ast.transformation
(** The MF + OF transformation over [k] configurations
    (parameters [cf1..cfk : CF, fm : FM]), with the paper's checking
    dependencies generalised to k:
    [MF = {CF₁..CFₖ → FM} ∪ {FM → CFᵢ}] and [OF = {CFᵢ → FM}]. *)

val transformation_standard : k:int -> Qvtr.Ast.transformation
(** Same patterns but no [dependencies] blocks — the standard QVT-R
    semantics (for experiments E2/E4). *)

val source : k:int -> string
(** The concrete QVT-R syntax of {!transformation} (it parses to the
    same AST; used by the CLI examples and parser tests). *)

val param_cf : int -> Mdl.Ident.t
(** [param_cf i] = [cfi] (1-based). *)

val param_fm : Mdl.Ident.t

val bind : cfs:Mdl.Model.t list -> fm:Mdl.Model.t -> (Mdl.Ident.t * Mdl.Model.t) list
(** Parameter binding for k = length cfs (renames the models to the
    parameter names). *)

val consistent_mf : cfs:Mdl.Model.t list -> fm:Mdl.Model.t -> bool
(** Oracle: intended MF semantics computed directly on sets
    ([mandatory = ⋂ selected]) — ground truth for the experiments. *)

val consistent_of : cfs:Mdl.Model.t list -> fm:Mdl.Model.t -> bool
(** Oracle: [⋃ selected ⊆ features]. *)

val consistent : cfs:Mdl.Model.t list -> fm:Mdl.Model.t -> bool
(** [consistent_mf && consistent_of] — the paper's [F = MF ∩ OF]. *)
