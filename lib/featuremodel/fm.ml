module Ident = Mdl.Ident
module MM = Mdl.Metamodel
module Model = Mdl.Model
module SS = Set.Make (String)

let fm_metamodel =
  MM.make_exn ~name:"FM"
    [
      MM.cls "Feature"
        ~attrs:
          [ MM.attr ~key:true "name" MM.P_string; MM.attr "mandatory" MM.P_bool ];
    ]

let cf_metamodel =
  MM.make_exn ~name:"CF"
    [ MM.cls "Feature" ~attrs:[ MM.attr ~key:true "name" MM.P_string ] ]

let metamodels =
  [ (Ident.make "CF", cf_metamodel); (Ident.make "FM", fm_metamodel) ]

let feature_cls = Ident.make "Feature"
let name_attr = Ident.make "name"
let mandatory_attr = Ident.make "mandatory"

let feature_model ~name features =
  List.fold_left
    (fun m (n, mand) ->
      let m, id = Model.add_object m ~cls:feature_cls in
      let m = Model.set_attr1 m id name_attr (Mdl.Value.Str n) in
      Model.set_attr1 m id mandatory_attr (Mdl.Value.Bool mand))
    (Model.empty ~name fm_metamodel)
    features

let configuration ~name features =
  List.fold_left
    (fun m n ->
      let m, id = Model.add_object m ~cls:feature_cls in
      Model.set_attr1 m id name_attr (Mdl.Value.Str n))
    (Model.empty ~name cf_metamodel)
    features

let fm_features m =
  Model.objects m
  |> List.filter_map (fun id ->
         match
           (Model.get_attr1 m id name_attr, Model.get_attr1 m id mandatory_attr)
         with
         | Some (Mdl.Value.Str s), Some (Mdl.Value.Bool b) -> Some (s, b)
         | Some (Mdl.Value.Str s), None -> Some (s, false)
         | _ -> None)
  |> List.sort compare

let cf_features m =
  Model.objects m
  |> List.filter_map (fun id ->
         match Model.get_attr1 m id name_attr with
         | Some (Mdl.Value.Str s) -> Some s
         | _ -> None)
  |> List.sort_uniq compare

let param_cf i = Ident.make (Printf.sprintf "cf%d" i)
let param_fm = Ident.make "fm"

(* ------------------------------------------------------------------ *)
(* The transformation, built generically over k                        *)

let tpl v props =
  {
    Qvtr.Ast.t_var = Ident.make v;
    t_class = feature_cls;
    t_props = props;
    t_loc = Qvtr.Loc.none;
  }

let prop f e =
  {
    Qvtr.Ast.p_feature = Ident.make f;
    p_value = Qvtr.Ast.PV_expr e;
    p_loc = Qvtr.Loc.none;
  }

let domain_cf i var =
  {
    Qvtr.Ast.d_model = param_cf i;
    d_template = tpl var [ prop "name" (Qvtr.Ast.O_var (Ident.make "n")) ];
    d_enforceable = true;
    d_loc = Qvtr.Loc.none;
  }

let mf_relation ~k ~with_deps =
  let n = Qvtr.Ast.O_var (Ident.make "n") in
  let cf_names = List.init k (fun i -> Ident.name (param_cf (i + 1))) in
  {
    Qvtr.Ast.r_name = Ident.make "MF";
    r_top = true;
    r_vars =
      [
        {
          Qvtr.Ast.v_name = Ident.make "n";
          v_type = Qvtr.Ast.T_string;
          v_loc = Qvtr.Loc.none;
        };
      ];
    r_prims = [];
    r_domains =
      List.init k (fun i -> domain_cf (i + 1) (Printf.sprintf "s%d" (i + 1)))
      @ [
          {
            Qvtr.Ast.d_model = param_fm;
            d_template = tpl "f" [ prop "name" n; prop "mandatory" (Qvtr.Ast.O_bool true) ];
            d_enforceable = true;
            d_loc = Qvtr.Loc.none;
          };
        ];
    r_when = [];
    r_where = [];
    r_deps =
      (if not with_deps then []
       else
         Qvtr.Dependency.make ~sources:cf_names ~target:"fm"
         :: List.map
              (fun cf -> Qvtr.Dependency.make ~sources:[ "fm" ] ~target:cf)
              cf_names);
    r_loc = Qvtr.Loc.none;
  }

let of_relation ~k ~with_deps =
  let n = Qvtr.Ast.O_var (Ident.make "n") in
  let cf_names = List.init k (fun i -> Ident.name (param_cf (i + 1))) in
  {
    Qvtr.Ast.r_name = Ident.make "OF";
    r_top = true;
    r_vars =
      [
        {
          Qvtr.Ast.v_name = Ident.make "n";
          v_type = Qvtr.Ast.T_string;
          v_loc = Qvtr.Loc.none;
        };
      ];
    r_prims = [];
    r_domains =
      List.init k (fun i -> domain_cf (i + 1) (Printf.sprintf "t%d" (i + 1)))
      @ [
          {
            Qvtr.Ast.d_model = param_fm;
            d_template = tpl "g" [ prop "name" n ];
            d_enforceable = true;
            d_loc = Qvtr.Loc.none;
          };
        ];
    r_when = [];
    r_where = [];
    r_deps =
      (if not with_deps then []
       else
         List.map (fun cf -> Qvtr.Dependency.make ~sources:[ cf ] ~target:"fm") cf_names);
    r_loc = Qvtr.Loc.none;
  }

let make_transformation ~k ~with_deps =
  if k < 1 then invalid_arg "Fm.transformation: k must be positive";
  {
    Qvtr.Ast.t_name = Ident.make "FeatureConfig";
    t_params =
      (let par name mm =
         { Qvtr.Ast.par_name = name; par_mm = Ident.make mm; par_loc = Qvtr.Loc.none }
       in
       List.init k (fun i -> par (param_cf (i + 1)) "CF") @ [ par param_fm "FM" ]);
    t_relations = [ mf_relation ~k ~with_deps; of_relation ~k ~with_deps ];
    t_loc = Qvtr.Loc.none;
  }

let transformation ~k = make_transformation ~k ~with_deps:true
let transformation_standard ~k = make_transformation ~k ~with_deps:false

let source ~k =
  let buf = Buffer.create 1024 in
  let cf i = Ident.name (param_cf i) in
  let params =
    String.concat ", " (List.init k (fun i -> cf (i + 1) ^ " : CF") @ [ "fm : FM" ])
  in
  Buffer.add_string buf (Printf.sprintf "transformation FeatureConfig(%s) {\n" params);
  (* MF *)
  Buffer.add_string buf "  top relation MF {\n    n : String;\n";
  List.iteri
    (fun i _ ->
      Buffer.add_string buf
        (Printf.sprintf "    domain %s s%d : Feature { name = n };\n" (cf (i + 1)) (i + 1)))
    (List.init k Fun.id);
  Buffer.add_string buf
    "    domain fm f : Feature { name = n, mandatory = true };\n";
  Buffer.add_string buf
    (Printf.sprintf "    dependencies { %s -> fm; %s }\n"
       (String.concat " " (List.init k (fun i -> cf (i + 1))))
       (String.concat " "
          (List.init k (fun i -> Printf.sprintf "fm -> %s;" (cf (i + 1))))));
  Buffer.add_string buf "  }\n";
  (* OF *)
  Buffer.add_string buf "  top relation OF {\n    n : String;\n";
  List.iteri
    (fun i _ ->
      Buffer.add_string buf
        (Printf.sprintf "    domain %s t%d : Feature { name = n };\n" (cf (i + 1)) (i + 1)))
    (List.init k Fun.id);
  Buffer.add_string buf "    domain fm g : Feature { name = n };\n";
  Buffer.add_string buf
    (Printf.sprintf "    dependencies { %s }\n"
       (String.concat " "
          (List.init k (fun i -> Printf.sprintf "%s -> fm;" (cf (i + 1))))));
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let bind ~cfs ~fm =
  List.mapi
    (fun i cf -> (param_cf (i + 1), Model.set_name cf (Ident.name (param_cf (i + 1)))))
    cfs
  @ [ (param_fm, Model.set_name fm "fm") ]

(* ------------------------------------------------------------------ *)
(* Set-level oracles                                                   *)

let selected cf = SS.of_list (cf_features cf)
let mandatory_names fm =
  SS.of_list (List.filter_map (fun (n, m) -> if m then Some n else None) (fm_features fm))
let all_names fm = SS.of_list (List.map fst (fm_features fm))

let consistent_mf ~cfs ~fm =
  match cfs with
  | [] -> SS.is_empty (mandatory_names fm)
  | c :: rest ->
    let inter = List.fold_left (fun acc c -> SS.inter acc (selected c)) (selected c) rest in
    SS.equal inter (mandatory_names fm)

let consistent_of ~cfs ~fm =
  let union = List.fold_left (fun acc c -> SS.union acc (selected c)) SS.empty cfs in
  SS.subset union (all_names fm)

let consistent ~cfs ~fm = consistent_mf ~cfs ~fm && consistent_of ~cfs ~fm
