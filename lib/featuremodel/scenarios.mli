(** The paper's worked scenarios, packaged as ready-to-run states.

    Each scenario is a (configurations, feature model) state plus the
    paper's narrative about which update directions can or cannot
    restore consistency. Experiment E6 runs each scenario against
    every transformation shape. *)

type t = {
  s_name : string;
  s_description : string;  (** where in the paper it comes from *)
  cfs : Mdl.Model.t list;
  fm : Mdl.Model.t;
  (* expectations, as target sets that should / should not be able to
     restore consistency *)
  restorable : string list list;  (** target sets expected to succeed *)
  not_restorable : string list list;  (** target sets expected to fail *)
}

val new_mandatory_feature : t
(** §3: "a new mandatory feature is introduced in the feature model.
    Then →Fᵢ_CF, which updates a single model, will clearly not be
    able to restore consistency ... the user should apply →F_CFᵏ and
    update all CFs." (k = 2) *)

val feature_made_mandatory : t
(** §1: "if a feature is changed to mandatory it must be selected in
    all configurations; this simple update could not be handled by the
    standard transformations". One configuration already selects it,
    the other does not. *)

val renamed_feature : t
(** §1: "if the name of a feature is changed, the natural way to
    recover consistency is to change the name of that feature in all
    the remaining configurations and in the feature model" — here the
    rename happened in cf1, and the rest may be updated
    ([→Fᵢ_FM×CFᵏ⁻¹]). *)

val unknown_selection : t
(** A configuration selects a feature missing from the feature model
    (violates OF); repairable from either side. *)

val all : t list
