(** The Echo-style engine façade: check consistency, enforce it in a
    chosen direction (target set), explain failures.

    This is the API the examples and the CLI drive. [checkonly] is
    {!Qvtr.Check}; [enforce] builds the shared search space and runs
    one of the two backends; both backends return least-change repairs
    and agree on the minimal distance (experiment E7). *)

type backend =
  | Iterative  (** increasing-distance search (Echo FASE'13) *)
  | Maxsat  (** weighted partial MaxSAT (FASE'14 extension) *)
  | Portfolio
      (** race both backends on worker domains, first usable outcome
          wins and the loser is cancelled; requires [jobs >= 2]
          (degrades to {!Iterative} otherwise). The
          {!enforce_result.backend} field reports the winning lane. *)

type enforce_result = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  relational_distance : int;
  edit_distance : int;
  iterations : int;
  backend : backend;
  stats : Telemetry.t;
      (** instrumentation roll-up of the repair: translation size,
          solver counters, per-distance iterations, timings *)
}

type enforce_outcome =
  | Enforced of enforce_result
  | Already_consistent
      (** the models were consistent; nothing to repair *)
  | Cannot_restore
      (** consistency cannot be restored by changing only the target
          models (within the bounded search space) *)

val check :
  ?mode:Qvtr.Semantics.mode ->
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  (Qvtr.Check.report, string) result

val enforce :
  ?backend:backend ->
  ?mode:Qvtr.Semantics.mode ->
  ?slack_objects:int ->
  ?extra_values:Mdl.Value.t list ->
  ?model_weights:(Mdl.Ident.t * int) list ->
  ?max_distance:int ->
  ?jobs:int ->
  ?sbp:bool ->
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  targets:Target.t ->
  (enforce_outcome, string) result
(** Default backend {!Iterative}; [slack_objects] fresh objects are
    available per target model (default 2); [extra_values] widens the
    value universe available to repairs; [model_weights] prioritises
    models in the aggregated distance.

    [jobs] (default 1) is the parallelism budget: the iterative
    backend probes that many distance levels speculatively
    ({!Repair.run}); the portfolio uses it to race lanes. The
    relational distance of the result is identical for every [jobs]
    value.

    [sbp] (default [true]) enables the bounds-level symmetry analysis
    and lex-leader symmetry-breaking predicates ({!Space.build});
    [~sbp:false] falls back to the legacy slack chain (the CLI's
    [--no-sbp]). Either way the minimal distance is unchanged. *)

val enforce_all :
  ?limit:int ->
  ?mode:Qvtr.Semantics.mode ->
  ?slack_objects:int ->
  ?extra_values:Mdl.Value.t list ->
  ?model_weights:(Mdl.Ident.t * int) list ->
  ?max_distance:int ->
  ?jobs:int ->
  ?split_after:float ->
  ?sbp:bool ->
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  targets:Target.t ->
  (enforce_outcome list, string) result
(** All distinct minimal repairs (iterative backend), up to [limit]
    (default 16), in the canonical order of {!Repair.run_all}
    (jobs-invariant): a singleton [Already_consistent] or
    [Cannot_restore], or one [Enforced] per repair — the menu a
    multidirectional Echo UI would offer the user (paper §4).
    [jobs >= 2] shards the enumeration across worker domains with
    adaptive cube splitting ([split_after] is the per-cube wall-time
    budget before an overweight cube is split; see
    {!Repair.run_all}). *)

type diagnosis = {
  d_relation : Mdl.Ident.t;
  d_direction : Qvtr.Ast.dependency;
  d_satisfiable : bool;
      (** can this directional check alone be satisfied by changing
          only the target models (within the bounded space)? *)
}

val diagnose :
  ?mode:Qvtr.Semantics.mode ->
  ?slack_objects:int ->
  ?extra_values:Mdl.Value.t list ->
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  targets:Target.t ->
  (diagnosis list, string) result
(** Explain a [Cannot_restore]: test each top directional check in
    isolation (together with the structural constraints) against the
    target set. Checks with [d_satisfiable = false] pinpoint the
    obstruction — typically a direction whose target models are all
    frozen, the situation §3 warns about. (All checks individually
    satisfiable with the conjunction unsatisfiable indicates genuinely
    conflicting requirements.) *)

val pp_diagnosis : Format.formatter -> diagnosis -> unit

val pp_outcome : Format.formatter -> enforce_outcome -> unit
