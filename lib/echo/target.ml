module Ident = Mdl.Ident

type t = Ident.Set.t

let single s = Ident.Set.singleton (Ident.make s)
let of_list l = Ident.Set.of_list (List.map Ident.make l)

let all_but ~params s =
  let excluded = Ident.make s in
  List.fold_left
    (fun acc p -> if Ident.equal p excluded then acc else Ident.Set.add p acc)
    Ident.Set.empty params

let validate ~params t =
  if Ident.Set.is_empty t then Error "empty target set"
  else
    match
      List.find_opt
        (fun p -> not (List.exists (Ident.equal p) params))
        (Ident.Set.elements t)
    with
    | Some p -> Error (Printf.sprintf "unknown target parameter %s" (Ident.name p))
    | None -> Ok ()

let pp ~params ppf t =
  let sources =
    List.filter (fun p -> not (Ident.Set.mem p t)) params
    |> List.map Ident.name
  in
  let targets = List.map Ident.name (Ident.Set.elements t) in
  Format.fprintf ppf "%s -> %s"
    (if sources = [] then "()" else String.concat " x " sources)
    (String.concat " x " targets)
