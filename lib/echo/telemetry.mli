(** Per-repair instrumentation roll-up (SAT → relog → echo).

    Aggregates the measurements of a single enforcement run: the
    translation size ({!Relog.Translate.stats}), the SAT search
    counters ({!Sat.Solver.stats}), the repair loop's own shape
    (iterations per distance level, blocked non-conformant instances,
    cardinality-circuit size) and wall-clock timings. Exposed on
    {!Engine.enforce_result}, printed by the CLI's [--stats] flag and
    serialized into the bench trajectory ([BENCH_*.json]). *)

type t = {
  backend : string;  (** ["iterative"] or ["maxsat"] *)
  jobs : int;  (** requested parallelism of the run (1 = serial) *)
  translation : Relog.Translate.stats;
  solver : Sat.Solver.stats;
      (** for parallel runs: counters summed over all worker clones *)
  solver_calls : int;  (** SAT [solve] calls made by the repair loop *)
  solve_time_cpu : float;
      (** seconds of solver effort summed over workers — for parallel
          runs this exceeds elapsed time (it is the aggregate cost,
          not the latency) *)
  solve_time_wall : float;
      (** elapsed seconds of the solving phase, span-measured on the
          submitting domain; equals [solve_time_cpu] for serial runs *)
  distance_levels : (int * int) list;
      (** iterative backend: [(distance bound, solver calls at that
          bound)] in search order; empty for the MaxSAT backend *)
  blocked_nonconformant : int;
      (** instances that satisfied the encoding but failed full
          conformance and were excluded by a blocking clause *)
  cardinality_inputs : int;  (** change literals (weight-expanded) *)
  cardinality_aux_vars : int;  (** totalizer variables *)
  cardinality_clauses : int;  (** totalizer clauses *)
  cardinality_saved_vars : int;
      (** variables avoided by the k-bounded totalizer truncation *)
  cardinality_saved_clauses : int;
      (** clauses avoided by the k-bounded totalizer truncation *)
  total_time : float;  (** wall seconds for the whole repair *)
}

val pp : Format.formatter -> t -> unit

(** {2 Minimal JSON}

    Re-export of the canonical {!Obs.Json.t} (one value type, escaper
    and printer shared by telemetry, the bench driver's
    [BENCH_*.json] emitter and both trace sinks). *)

type json = Obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
val solver_json : Sat.Solver.stats -> json
val to_json : t -> json
