(** MaxSAT-based least-change repair — the "target oriented relational
    model finding" extension of Echo (Cunha, Macedo & Guimarães,
    FASE'14, ref [2] of the paper).

    Same search space as {!Repair}, but optimality is delegated to a
    weighted partial MaxSAT solver: each change literal becomes (the
    relaxation of) a soft clause "keep this tuple as it was", weighted
    by the model's priority; hard clauses are the consistency and
    structural constraints. *)

type outcome = Repair.outcome

val run :
  ?jobs:int ->
  ?token:Parallel.Pool.token ->
  Space.t ->
  (outcome, string) result
(** The SAT-driven descent is inherently sequential, so [jobs]
    (default 1) is only recorded in the telemetry; parallel speedups
    for this backend come from the {!Engine} portfolio, which races it
    against the iterative ladder and cancels the loser via [token]
    (cancellation interrupts the underlying solver and yields
    [Error "interrupted"]). *)
