(** MaxSAT-based least-change repair — the "target oriented relational
    model finding" extension of Echo (Cunha, Macedo & Guimarães,
    FASE'14, ref [2] of the paper).

    Same search space as {!Repair}, but optimality is delegated to a
    weighted partial MaxSAT solver: each change literal becomes (the
    relaxation of) a soft clause "keep this tuple as it was", weighted
    by the model's priority; hard clauses are the consistency and
    structural constraints. *)

type outcome = Repair.outcome

val run : Space.t -> (outcome, string) result
