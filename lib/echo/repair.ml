(* Stack-wide roll-ups (Obs.Metrics registry); per-run figures stay in
   the [search] accumulators below. *)
let m_iterations = Obs.Metrics.counter "echo.repair.iterations"
let m_blocked = Obs.Metrics.counter "echo.repair.blocked_nonconformant"
let m_runs = Obs.Metrics.counter "echo.repair.runs"
let h_run_wall = Obs.Metrics.histogram "echo.repair.wall_s"

(* Adaptive enumeration sharding: cubes split when measured as
   overweight (see [run_all_parallel]); the histogram records the wall
   time each dequeued cube actually cost, which is the measurement the
   splitting acts on. *)
let m_cube_splits = Obs.Metrics.counter "echo.repair.cube_splits"
let h_cube_wall = Obs.Metrics.histogram "echo.repair.cube_wall_s"

(* Canonical-dedup discards: distinct SAT assignments that decoded to
   an already-seen model. The figure the symmetry SBPs exist to
   shrink — E12 tracks it on/off. *)
let m_dedup_discards = Obs.Metrics.counter "echo.repair.dedup_discards"

let span_args ~backend ~distance ~assumptions () =
  [
    ("backend", Obs.Json.String backend);
    ("distance", Obs.Json.Int distance);
    ("assumptions", Obs.Json.Int assumptions);
  ]

type success = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  relational_distance : int;
  edit_distance : int;
  iterations : int;
  stats : Telemetry.t;
}

type outcome =
  | Repaired of success
  | Cannot_restore

(* Shared setup of the iterative search: finder, totalizer over the
   change literals, and the telemetry accumulators. The counters are
   atomics so worker domains may bump them concurrently. *)
type search = {
  finder : Relog.Finder.t;
  card : Sat.Cardinality.t;
  total : int;  (* total weight = totalizer input count *)
  started : float;
  iterations : int Atomic.t;
  blocked : int Atomic.t;  (* non-conformant instances excluded *)
  mutable levels : (int * int) list;  (* (distance, solver calls), reversed;
                                         serial path only — the parallel
                                         ladder keeps its own table *)
}

let start ?cap space =
  let finder =
    Obs.Trace.with_span ~name:"repair.prepare" (fun () ->
        Relog.Finder.prepare (Space.bounds space) (Space.formulas space))
  in
  if Space.use_sbp space then
    ignore
      (Obs.Trace.with_span ~name:"repair.symmetry" (fun () ->
           Relog.Finder.add_symmetry
             ~fixed:(Space.symmetry_fixed space)
             ~respect:(Space.symmetry_respect space)
             finder));
  let trans = Relog.Finder.translation finder in
  let changes = Space.change_literals space trans in
  let inputs = List.concat_map (fun (l, w) -> List.init w (fun _ -> l)) changes in
  let card =
    Obs.Trace.with_span ~name:"cnf.cardinality"
      ~args:(fun () -> [ ("inputs", Obs.Json.Int (List.length inputs)) ])
      (fun () -> Sat.Cardinality.build ?cap (Relog.Finder.solver finder) inputs)
  in
  Obs.Metrics.incr m_runs;
  {
    finder;
    card;
    total = List.length inputs;
    started = Sat.Telemetry.now ();
    iterations = Atomic.make 0;
    blocked = Atomic.make 0;
    levels = [];
  }

let step sc k =
  Atomic.incr sc.iterations;
  Obs.Metrics.incr m_iterations;
  (sc.levels <-
     (match sc.levels with
     | (k', n) :: rest when k' = k -> (k', n + 1) :: rest
     | levels -> (k, 1) :: levels));
  let assumptions = Sat.Cardinality.at_most sc.card k in
  Obs.Trace.with_span ~name:"solve"
    ~args:
      (span_args ~backend:"iterative" ~distance:k
         ~assumptions:(List.length assumptions))
    (fun () -> Relog.Finder.solve ~assumptions sc.finder)

let zero_stats =
  {
    Sat.Solver.decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt = 0;
    reduces = 0;
    solves = 0;
    solve_time = 0.0;
  }

let add_stats a b =
  {
    Sat.Solver.decisions = a.Sat.Solver.decisions + b.Sat.Solver.decisions;
    propagations = a.Sat.Solver.propagations + b.Sat.Solver.propagations;
    conflicts = a.Sat.Solver.conflicts + b.Sat.Solver.conflicts;
    restarts = a.Sat.Solver.restarts + b.Sat.Solver.restarts;
    learnt = a.Sat.Solver.learnt + b.Sat.Solver.learnt;
    reduces = a.Sat.Solver.reduces + b.Sat.Solver.reduces;
    solves = a.Sat.Solver.solves + b.Sat.Solver.solves;
    solve_time = a.Sat.Solver.solve_time +. b.Sat.Solver.solve_time;
  }

let telemetry_of sc ~jobs ~solver ~solver_calls ~solve_time_cpu
    ~solve_time_wall ~levels =
  let fs = Relog.Finder.stats sc.finder in
  let total = Sat.Telemetry.now () -. sc.started in
  Obs.Metrics.observe h_run_wall total;
  {
    Telemetry.backend = "iterative";
    jobs;
    translation = fs.Relog.Finder.translation;
    solver;
    solver_calls;
    solve_time_cpu;
    solve_time_wall;
    distance_levels = levels;
    blocked_nonconformant = Atomic.get sc.blocked;
    cardinality_inputs = sc.total;
    cardinality_aux_vars = Sat.Cardinality.aux_vars sc.card;
    cardinality_clauses = Sat.Cardinality.aux_clauses sc.card;
    cardinality_saved_vars = Sat.Cardinality.saved_vars sc.card;
    cardinality_saved_clauses = Sat.Cardinality.saved_clauses sc.card;
    total_time = total;
  }

let telemetry ?(jobs = 1) sc =
  let fs = Relog.Finder.stats sc.finder in
  (* Serial search: one domain, so summed solver effort is also the
     elapsed solving time. *)
  telemetry_of sc ~jobs ~solver:fs.Relog.Finder.solver
    ~solver_calls:fs.Relog.Finder.solves
    ~solve_time_cpu:fs.Relog.Finder.solve_time
    ~solve_time_wall:fs.Relog.Finder.solve_time
    ~levels:(List.rev sc.levels)

(* Canonical serialization of a repair, used both as the dedup key and
   as the deterministic result order of [run_all]. *)
let repair_key repaired =
  String.concat "\x00"
    (List.map
       (fun (p, m) -> Mdl.Ident.name p ^ "\x01" ^ Mdl.Serialize.model_to_string m)
       repaired)

(* ------------------------------------------------------------------ *)
(* Parallel ladder                                                      *)

(* Speculative probing of the distance ladder on a shared board.

   Levels [floor+1 .. floor+window] are claimed highest-first by the
   worker domains, each solving its level on a private solver clone.
   Soundness rests on the monotonicity of the level predicate
   "some conformant instance has distance <= k":

   - UNSAT at level l (after blocking only non-conformant instances)
     proves every level <= l conformant-free, so [floor] jumps to l —
     one high probe can retire a whole window, which is also where the
     jobs >= 2 speedup on few-core machines comes from;
   - a conformant witness at distance d improves [best] and makes all
     levels >= d irrelevant.

   Workers holding a now-dead level are interrupted. The search is
   done when [floor >= best - 1]: the committed distance is exactly
   the minimal conformant distance, for every schedule, worker count
   and window width — minimality is decided by level, never by
   arrival order. (The witness model itself may differ between
   schedules when several equally-minimal repairs exist; [run_all]
   is the jobs-invariant enumeration of all of them.) *)

type probe = {
  p_repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  p_edit : int;
}

type board = {
  bmu : Mutex.t;
  mutable floor : int;  (* all levels <= floor proven conformant-free *)
  mutable best : (int * probe) option;  (* least witnessed distance *)
  claimed : (int, unit) Hashtbl.t;
  active : int option array;  (* worker -> level being solved *)
  clones : Sat.Solver.t option array;
  level_counts : (int, int) Hashtbl.t;
  mutable aborted : bool;
}

let block_clone trans clone =
  let clause =
    Relog.Translate.fold_primaries trans
      (fun _ _ v acc ->
        (if Sat.Solver.value clone v then Sat.Lit.neg_of v else Sat.Lit.pos v)
        :: acc)
      []
  in
  Sat.Solver.add_clause clone clause

(* Number of worker domains for a requested parallelism: never more
   than the hardware offers. The speculation window follows this
   count, not the raw [jobs] request: a probe that cannot overlap any
   other work in wall-clock is pure cost (it skips the incremental
   warm-up consecutive levels share), which is precisely how jobs = 4
   ran slower than jobs = 1 on small boxes in BENCH_2..4. The result
   is window-invariant either way. MDQVTR_WORKERS overrides the
   detected core count (tests use it to force a genuinely concurrent
   schedule — speculative probes and adaptive cube splits — on
   single-core CI boxes). When tracing, the explicit budget wins even
   on fewer cores: the schedule being observed (one track per probe
   worker) is the one the user asked for. *)
let hardware_workers () =
  match Sys.getenv_opt "MDQVTR_WORKERS" with
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | _ -> Parallel.Pool.default_jobs ())
  | None -> Parallel.Pool.default_jobs ()

let worker_count jobs =
  if Obs.Trace.enabled () then max 1 jobs
  else max 1 (min jobs (hardware_workers ()))

(* Degrade a parallelism request to plain serial execution when it
   could not buy any concurrency anyway:
   - nested parallel region (a run issued from inside a pool worker,
     e.g. the portfolio's iterative lane): oversubscribing the cores
     the enclosing region already owns is pure loss, and blocking on
     nested futures of the same global pool can stall behind the very
     task doing the waiting;
   - a box (or MDQVTR_WORKERS pretence) with a single core: the
     parallel paths would run their one worker through the clone /
     shared-queue machinery for nothing — the serial path reuses the
     incremental finder solver directly and is strictly cheaper.
   Traced runs keep the requested width (worker_count handles it):
   the schedule being observed is the one the user asked for. *)
let effective_jobs jobs =
  if jobs > 1 && (Parallel.Pool.in_worker () || worker_count jobs = 1) then 1
  else jobs

let interrupt_dead_locked board ~self =
  Array.iteri
    (fun i level ->
      if i <> self then
        match (level, board.clones.(i)) with
        | Some l, Some solver ->
          let dead =
            l <= board.floor
            || match board.best with Some (b, _) -> l >= b | None -> false
          in
          if dead then Sat.Solver.interrupt solver
        | _ -> ())
    board.active

let ladder ~window ~cap sc space board wi =
  let trans = Relog.Finder.translation sc.finder in
  let clone = Relog.Finder.clone_solver sc.finder in
  Mutex.lock board.bmu;
  board.clones.(wi) <- Some clone;
  Mutex.unlock board.bmu;
  (* Highest unclaimed level in [floor+1, hi], with bmu held. *)
  let claim_locked () =
    let hi =
      min cap
        (match board.best with
        | Some (b, _) -> b - 1
        | None -> board.floor + window)
    in
    let rec find l =
      if l <= board.floor then None
      else if Hashtbl.mem board.claimed l then find (l - 1)
      else Some l
    in
    find hi
  in
  let rec next () =
    Mutex.lock board.bmu;
    if board.aborted then begin
      board.active.(wi) <- None;
      Mutex.unlock board.bmu;
      raise Parallel.Pool.Cancelled
    end;
    match claim_locked () with
    | None ->
      board.active.(wi) <- None;
      Mutex.unlock board.bmu;
      Sat.Solver.stats clone
    | Some l ->
      Hashtbl.replace board.claimed l ();
      board.active.(wi) <- Some l;
      Mutex.unlock board.bmu;
      solve_level l
  and solve_level l =
    Atomic.incr sc.iterations;
    Obs.Metrics.incr m_iterations;
    Mutex.lock board.bmu;
    Hashtbl.replace board.level_counts l
      (1 + Option.value ~default:0 (Hashtbl.find_opt board.level_counts l));
    Mutex.unlock board.bmu;
    (* Clone solves bypass [Finder.solve]; the SBP guard must ride
       along explicitly (and first, for assumption-prefix reuse). *)
    let assumptions =
      Relog.Finder.sbp_assumptions sc.finder @ Sat.Cardinality.at_most sc.card l
    in
    match
      Obs.Trace.with_span ~name:"solve"
        ~args:
          (span_args ~backend:"iterative" ~distance:l
             ~assumptions:(List.length assumptions))
        (fun () -> Sat.Solver.solve ~assumptions clone)
    with
    | exception Sat.Solver.Interrupted ->
      Mutex.lock board.bmu;
      let abort = board.aborted in
      let dead =
        l <= board.floor
        || match board.best with Some (b, _) -> l >= b | None -> false
      in
      Mutex.unlock board.bmu;
      if abort then raise Parallel.Pool.Cancelled
      else if dead then next ()  (* abandon: the level no longer matters *)
      else solve_level l  (* spurious (stale interrupt): retry *)
    | Sat.Solver.Unsat ->
      (* No conformant instance at any level <= l (monotone skip). *)
      Mutex.lock board.bmu;
      if l > board.floor then board.floor <- l;
      interrupt_dead_locked board ~self:wi;
      Mutex.unlock board.bmu;
      next ()
    | Sat.Solver.Sat -> (
      let inst = Relog.Finder.decode_with sc.finder (Sat.Solver.value clone) in
      match Space.decode_targets space inst with
      | Error _ ->
        Atomic.incr sc.blocked;
        Obs.Metrics.incr m_blocked;
        block_clone trans clone;
        solve_level l
      | Ok repaired ->
        let d = Space.relational_distance space inst in
        let probe =
          { p_repaired = repaired; p_edit = Space.edit_distance space repaired }
        in
        Mutex.lock board.bmu;
        (match board.best with
        | Some (b, _) when b <= d -> ()
        | _ -> board.best <- Some (d, probe));
        interrupt_dead_locked board ~self:wi;
        Mutex.unlock board.bmu;
        next ())
  in
  next ()

(* Run the parallel ladder to the minimal conformant distance.
   Returns the board (with [best]/[floor] final) and the merged
   per-worker solver statistics. *)
let parallel_minimal ~jobs ?token ~cap sc space =
  let nworkers = worker_count jobs in
  let pool = Parallel.Pool.global ~jobs:nworkers in
  let board =
    {
      bmu = Mutex.create ();
      floor = -1;
      best = None;
      claimed = Hashtbl.create 16;
      active = Array.make nworkers None;
      clones = Array.make nworkers None;
      level_counts = Hashtbl.create 16;
      aborted = false;
    }
  in
  Option.iter
    (fun tok ->
      Parallel.Pool.on_cancel tok (fun () ->
          Mutex.lock board.bmu;
          board.aborted <- true;
          Array.iter (Option.iter Sat.Solver.interrupt) board.clones;
          Mutex.unlock board.bmu))
    token;
  let futures =
    List.init nworkers (fun wi ->
        Parallel.Pool.submit pool (fun _ ->
            ladder ~window:nworkers ~cap sc space board wi))
  in
  let results = List.map Parallel.Pool.result futures in
  if board.aborted then Error `Interrupted
  else begin
    (* Re-raise any real worker failure (after all workers joined). *)
    List.iter
      (function
        | Ok _ | Error Parallel.Pool.Cancelled -> ()
        | Error e -> raise e)
      results;
    let stats =
      List.fold_left
        (fun acc -> function Ok st -> add_stats acc st | Error _ -> acc)
        zero_stats results
    in
    let levels =
      List.sort compare
        (Hashtbl.fold (fun l n acc -> (l, n) :: acc) board.level_counts [])
    in
    Ok (board, stats, levels)
  end

let run_parallel ~jobs ?token ~cap sc space =
  let solve_started = Sat.Telemetry.now () in
  match parallel_minimal ~jobs ?token ~cap sc space with
  | Error `Interrupted -> Error "interrupted"
  | Ok (board, stats, levels) -> (
    let solve_wall = Sat.Telemetry.now () -. solve_started in
    let tele () =
      telemetry_of sc ~jobs ~solver:stats ~solver_calls:stats.Sat.Solver.solves
        ~solve_time_cpu:stats.Sat.Solver.solve_time ~solve_time_wall:solve_wall
        ~levels
    in
    match board.best with
    | None -> Ok Cannot_restore
    | Some (d, p) ->
      Ok
        (Repaired
           {
             repaired = p.p_repaired;
             relational_distance = d;
             edit_distance = p.p_edit;
             iterations = Atomic.get sc.iterations;
             stats = tele ();
           }))

(* ------------------------------------------------------------------ *)

let run_serial ?token sc ~cap space =
  Option.iter
    (fun tok ->
      Parallel.Pool.on_cancel tok (fun () -> Relog.Finder.interrupt sc.finder))
    token;
  let rec at_distance k =
    if k > cap then Ok Cannot_restore
    else
      match step sc k with
      | Relog.Finder.Unsat -> at_distance (k + 1)
      | Relog.Finder.Sat inst -> (
        match Space.decode_targets space inst with
        | Ok repaired ->
          Ok
            (Repaired
               {
                 repaired;
                 relational_distance = Space.relational_distance space inst;
                 edit_distance = Space.edit_distance space repaired;
                 iterations = Atomic.get sc.iterations;
                 stats = telemetry sc;
               })
        | Error _ ->
          (* The relational instance passed the encoded constraints
             but the decoded model fails full conformance (the
             encoding approximates multiplicity lower bounds > 1):
             exclude it and keep searching at the same distance. *)
          Atomic.incr sc.blocked;
          Obs.Metrics.incr m_blocked;
          Relog.Finder.block sc.finder;
          at_distance k)
  in
  try at_distance 0 with Sat.Solver.Interrupted -> Error "interrupted"

let run ?max_distance ?(jobs = 1) ?token space =
  if jobs < 1 then invalid_arg "Repair.run: jobs must be >= 1";
  let jobs = effective_jobs jobs in
  try
    let sc = start ?cap:max_distance space in
    let cap = Option.value ~default:sc.total max_distance in
    if jobs = 1 then run_serial ?token sc ~cap space
    else run_parallel ~jobs ?token ~cap sc space
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)

(* Distinct SAT assignments can decode to identical models (e.g.
   symmetric uses of slack atoms not covered by the symmetry chain);
   deduplicate on a canonical serialization of the decoded states,
   hashed — not pairwise Model.equal over all seen keys. *)
let dedup repairs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (r : success) ->
      let key = repair_key r.repaired in
      if Hashtbl.mem seen key then begin
        Obs.Metrics.incr m_dedup_discards;
        false
      end
      else begin
        Hashtbl.add seen key ();
        true
      end)
    repairs

(* Deterministic result order, independent of discovery order (and so
   of the jobs value): sort on the canonical serialization. *)
let canonical_sort repairs =
  List.sort
    (fun (a : success) (b : success) ->
      String.compare (repair_key a.repaired) (repair_key b.repaired))
    repairs

let run_all_serial sc ~cap ~limit space =
  (* Collect every (conformant) instance at distance k; [n] carries
     the count so the limit check is O(1) per iteration. *)
  let collect_at k =
    let rec go acc n =
      if n >= limit then List.rev acc
      else
        match step sc k with
        | Relog.Finder.Unsat -> List.rev acc
        | Relog.Finder.Sat inst -> (
          Relog.Finder.block sc.finder;
          match Space.decode_targets space inst with
          | Error _ ->
            Atomic.incr sc.blocked;
            Obs.Metrics.incr m_blocked;
            go acc n
          | Ok repaired ->
            let r =
              {
                repaired;
                relational_distance = Space.relational_distance space inst;
                edit_distance = Space.edit_distance space repaired;
                iterations = Atomic.get sc.iterations;
                stats = telemetry sc;
              }
            in
            go (r :: acc) (n + 1))
    in
    go [] 0
  in
  let rec at_distance k =
    if k > cap then Ok []
    else
      match collect_at k with
      | [] -> at_distance (k + 1)
      | repairs ->
        (* [collect_at] also sees instances strictly below k that
           earlier iterations proved absent, so everything returned
           is at the minimal distance. *)
        let final = telemetry sc in
        Ok
          (List.map
             (fun r -> { r with stats = final })
             (canonical_sort (dedup repairs)))
  in
  at_distance 0

(* Shard the enumeration at the minimal distance into disjoint cubes:
   sign patterns over a prefix of the change literals partition the
   assignment space, so workers enumerate disjoint subspaces with
   purely local blocking clauses. A worker's full-assignment blocks
   are no-ops in every other cube, and cross-cube duplicates at the
   model level (assignments decoding to the same state) fall to the
   global dedup.

   The sharding is adaptive. Cubes live in a shared queue and their
   cost is measured as they run ([h_cube_wall]): a worker that has
   spent more than [split_after] seconds of wall time inside one cube
   while another worker sits starved (queue empty, parked on the
   condition) splits it — the complementary half-cube (next change
   literal, negated) goes back to the queue and the worker narrows
   its own enumeration to the other half. The static 2^ceil(log2
   jobs) grid is thus only the initial partition; skew — one cube
   holding nearly all the models, the common case when few literals
   distinguish the minimal repairs — is rebalanced exactly where the
   measurements show it. Splitting preserves the result:
   {cube} = {cube ∧ l} ∪ {cube ∧ ¬l}, the narrowed remainder and the
   pushed half are disjoint, and an instance the splitter had already
   collected from the pushed half is blocked only in its own clone —
   the other worker's re-find collapses in the model-level dedup. *)
let run_all_parallel ~jobs ~split_after ~token ~cap ~limit sc space =
  let solve_started = Sat.Telemetry.now () in
  match parallel_minimal ~jobs ?token ~cap sc space with
  | Error `Interrupted -> Error "interrupted"
  | Ok (board, ladder_stats, levels) -> (
    match board.best with
    | None -> Ok []
    | Some (dstar, _) ->
      let trans = Relog.Finder.translation sc.finder in
      let change_lits =
        Array.of_list (List.map fst (Space.change_literals space trans))
      in
      let nworkers = worker_count jobs in
      let bits =
        let rec go b = if 1 lsl b >= jobs then b else go (b + 1) in
        min (go 0) (Array.length change_lits)
      in
      (* Splits can refine well past the initial grid; bound the depth
         so a degenerate space cannot split forever. *)
      let max_depth = min (Array.length change_lits) (bits + 8) in
      let base =
        Relog.Finder.sbp_assumptions sc.finder
        @ Sat.Cardinality.at_most sc.card dstar
      in
      (* Shared cube queue. [active] counts workers inside a cube and
         [starved] the ones parked waiting for one: the enumeration is
         drained when the queue is empty and nobody is active, and a
         positive [starved] is the signal that splitting pays. *)
      let qmu = Mutex.create () in
      let qcond = Condition.create () in
      let pending = Queue.create () in
      let active = ref 0 in
      let starved = ref 0 in
      for i = 0 to (1 lsl bits) - 1 do
        Queue.add
          (List.init bits (fun b ->
               if i land (1 lsl b) <> 0 then change_lits.(b)
               else Sat.Lit.neg change_lits.(b)))
          pending
      done;
      let enumerate_cubes tok =
        let clone = Relog.Finder.clone_solver sc.finder in
        Parallel.Pool.on_cancel tok (fun () ->
            Sat.Solver.interrupt clone;
            (* also wake anyone parked on the queue so it can observe
               the cancelled token *)
            Mutex.lock qmu;
            Condition.broadcast qcond;
            Mutex.unlock qmu);
        let collected = ref [] in
        (* Next cube, or None when the enumeration is drained; parks
           while other workers are active (they may split and refill
           the queue). *)
        let take () =
          Mutex.lock qmu;
          let rec go () =
            if Parallel.Pool.cancelled tok then begin
              Mutex.unlock qmu;
              raise Parallel.Pool.Cancelled
            end
            else
              match Queue.take_opt pending with
              | Some cube ->
                incr active;
                Mutex.unlock qmu;
                Some cube
              | None ->
                if !active = 0 then begin
                  Mutex.unlock qmu;
                  None
                end
                else begin
                  incr starved;
                  Condition.wait qcond qmu;
                  decr starved;
                  go ()
                end
          in
          go ()
        in
        let finish () =
          Mutex.lock qmu;
          decr active;
          if !active = 0 && Queue.is_empty pending then
            Condition.broadcast qcond;
          Mutex.unlock qmu
        in
        (* Enumerate one cube to exhaustion (or the local limit),
           narrowing it by splits along the way. *)
        let enum_cube cube0 =
          let cube = ref cube0 in
          let depth = ref (List.length cube0) in
          let cube_started = Sat.Telemetry.now () in
          let segment_started = ref cube_started in
          let n = ref 0 in
          let exhausted = ref false in
          while (not !exhausted) && !n < limit do
            (* Adaptive split: this cube has monopolised its worker
               past the budget while another worker is starved — give
               half away and renew the budget for the narrowed rest. *)
            (if
               !depth < max_depth
               && Sat.Telemetry.now () -. !segment_started > split_after
             then begin
               let gave =
                 Mutex.lock qmu;
                 let g = !starved > 0 && Queue.is_empty pending in
                 if g then begin
                   Queue.add (Sat.Lit.neg change_lits.(!depth) :: !cube) pending;
                   Condition.signal qcond
                 end;
                 Mutex.unlock qmu;
                 g
               in
               if gave then begin
                 Obs.Metrics.incr m_cube_splits;
                 cube := change_lits.(!depth) :: !cube;
                 incr depth
               end;
               segment_started := Sat.Telemetry.now ()
             end);
            let assumptions = base @ !cube in
            Atomic.incr sc.iterations;
            Obs.Metrics.incr m_iterations;
            match
              Obs.Trace.with_span ~name:"solve"
                ~args:
                  (span_args ~backend:"enumerate" ~distance:dstar
                     ~assumptions:(List.length assumptions))
                (fun () -> Sat.Solver.solve ~assumptions clone)
            with
            | exception Sat.Solver.Interrupted -> raise Parallel.Pool.Cancelled
            | Sat.Solver.Unsat -> exhausted := true
            | Sat.Solver.Sat -> (
              let inst =
                Relog.Finder.decode_with sc.finder (Sat.Solver.value clone)
              in
              block_clone trans clone;
              match Space.decode_targets space inst with
              | Error _ ->
                Atomic.incr sc.blocked;
                Obs.Metrics.incr m_blocked
              | Ok repaired ->
                let r =
                  {
                    repaired;
                    relational_distance = Space.relational_distance space inst;
                    edit_distance = Space.edit_distance space repaired;
                    iterations = 0;
                    stats = telemetry sc;
                  }
                in
                collected := r :: !collected;
                incr n)
          done;
          Obs.Metrics.observe h_cube_wall (Sat.Telemetry.now () -. cube_started)
        in
        let rec drain () =
          match take () with
          | None -> (!collected, Sat.Solver.stats clone)
          | Some cube ->
            Fun.protect ~finally:finish (fun () -> enum_cube cube);
            drain ()
        in
        drain ()
      in
      let pool = Parallel.Pool.global ~jobs:nworkers in
      let futures =
        List.init nworkers (fun _ -> Parallel.Pool.submit pool enumerate_cubes)
      in
      (match token with
      | Some tok when Parallel.Pool.cancelled tok ->
        List.iter Parallel.Pool.cancel futures
      | Some tok ->
        Parallel.Pool.on_cancel tok (fun () ->
            List.iter Parallel.Pool.cancel futures)
      | None -> ());
      let results = List.map Parallel.Pool.result futures in
      let interrupted =
        (match token with Some tok -> Parallel.Pool.cancelled tok | None -> false)
        || List.exists
             (function
               | Error (Parallel.Pool.Cancelled | Sat.Solver.Interrupted) -> true
               | _ -> false)
             results
      in
      if interrupted then Error "interrupted"
      else begin
        List.iter (function Ok _ -> () | Error e -> raise e) results;
        let repairs =
          List.concat_map (function Ok (rs, _) -> rs | Error _ -> []) results
        in
        let stats =
          List.fold_left
            (fun acc -> function Ok (_, st) -> add_stats acc st | Error _ -> acc)
            ladder_stats results
        in
        let final =
          (* Wall covers both phases run on the pool: the minimality
             ladder and the sharded enumeration. *)
          telemetry_of sc ~jobs ~solver:stats
            ~solver_calls:stats.Sat.Solver.solves
            ~solve_time_cpu:stats.Sat.Solver.solve_time
            ~solve_time_wall:(Sat.Telemetry.now () -. solve_started)
            ~levels
        in
        let out =
          canonical_sort (dedup repairs)
          |> List.map (fun r ->
                 { r with iterations = Atomic.get sc.iterations; stats = final })
        in
        (* Per-cube limits can over-collect; enforce the global cap on
           the canonical order. *)
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        Ok (take limit out)
      end)

let run_all ?max_distance ?(limit = 16) ?(jobs = 1) ?(split_after = 0.025)
    ?token space =
  if jobs < 1 then invalid_arg "Repair.run_all: jobs must be >= 1";
  let jobs = effective_jobs jobs in
  try
    let sc = start ?cap:max_distance space in
    let cap = Option.value ~default:sc.total max_distance in
    if jobs = 1 then begin
      Option.iter
        (fun tok ->
          Parallel.Pool.on_cancel tok (fun () -> Relog.Finder.interrupt sc.finder))
        token;
      try run_all_serial sc ~cap ~limit space
      with Sat.Solver.Interrupted -> Error "interrupted"
    end
    else run_all_parallel ~jobs ~split_after ~token ~cap ~limit sc space
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg
