type success = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  relational_distance : int;
  edit_distance : int;
  iterations : int;
}

type outcome =
  | Repaired of success
  | Cannot_restore

let run ?max_distance space =
  try
    let finder = Relog.Finder.prepare (Space.bounds space) (Space.formulas space) in
    let trans = Relog.Finder.translation finder in
    let changes = Space.change_literals space trans in
    let inputs = List.concat_map (fun (l, w) -> List.init w (fun _ -> l)) changes in
    let card = Sat.Cardinality.build (Relog.Finder.solver finder) inputs in
    let total = List.length inputs in
    let cap = Option.value ~default:total max_distance in
    let iterations = ref 0 in
    let rec at_distance k =
      if k > cap then Ok Cannot_restore
      else begin
        incr iterations;
        match
          Relog.Finder.solve ~assumptions:(Sat.Cardinality.at_most card k) finder
        with
        | Relog.Finder.Unsat -> at_distance (k + 1)
        | Relog.Finder.Sat inst -> (
          match Space.decode_targets space inst with
          | Ok repaired ->
            Ok
              (Repaired
                 {
                   repaired;
                   relational_distance = Space.relational_distance space inst;
                   edit_distance = Space.edit_distance space repaired;
                   iterations = !iterations;
                 })
          | Error _ ->
            (* The relational instance passed the encoded constraints
               but the decoded model fails full conformance (the
               encoding approximates multiplicity lower bounds > 1):
               exclude it and keep searching at the same distance. *)
            Relog.Finder.block finder;
            at_distance k)
      end
    in
    at_distance 0
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg

let run_all ?max_distance ?(limit = 16) space =
  try
    let finder = Relog.Finder.prepare (Space.bounds space) (Space.formulas space) in
    let trans = Relog.Finder.translation finder in
    let changes = Space.change_literals space trans in
    let inputs = List.concat_map (fun (l, w) -> List.init w (fun _ -> l)) changes in
    let card = Sat.Cardinality.build (Relog.Finder.solver finder) inputs in
    let total = List.length inputs in
    let cap = Option.value ~default:total max_distance in
    let iterations = ref 0 in
    (* Collect every (conformant) instance at distance k. *)
    let collect_at k =
      let rec go acc =
        if List.length acc >= limit then List.rev acc
        else begin
          incr iterations;
          match
            Relog.Finder.solve ~assumptions:(Sat.Cardinality.at_most card k) finder
          with
          | Relog.Finder.Unsat -> List.rev acc
          | Relog.Finder.Sat inst -> (
            Relog.Finder.block finder;
            match Space.decode_targets space inst with
            | Error _ -> go acc
            | Ok repaired ->
              let r =
                {
                  repaired;
                  relational_distance = Space.relational_distance space inst;
                  edit_distance = Space.edit_distance space repaired;
                  iterations = !iterations;
                }
              in
              go (r :: acc))
        end
      in
      go []
    in
    (* Distinct SAT assignments can decode to identical models (e.g.
       symmetric uses of slack atoms not covered by the symmetry
       chain); deduplicate on the decoded states. *)
    let dedup repairs =
      let seen = ref [] in
      List.filter
        (fun (r : success) ->
          let key =
            List.map (fun (p, m) -> (Mdl.Ident.name p, m)) r.repaired
          in
          if
            List.exists
              (fun k ->
                List.for_all2
                  (fun (n1, m1) (n2, m2) -> n1 = n2 && Mdl.Model.equal m1 m2)
                  k key)
              !seen
          then false
          else begin
            seen := key :: !seen;
            true
          end)
        repairs
    in
    let rec at_distance k =
      if k > cap then Ok []
      else
        match collect_at k with
        | [] -> at_distance (k + 1)
        | repairs ->
          (* [collect_at] also sees instances strictly below k that
             earlier iterations proved absent, so everything returned
             is at the minimal distance. *)
          Ok (dedup repairs)
    in
    at_distance 0
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg
