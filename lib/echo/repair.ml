type success = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  relational_distance : int;
  edit_distance : int;
  iterations : int;
  stats : Telemetry.t;
}

type outcome =
  | Repaired of success
  | Cannot_restore

(* Shared setup of the iterative search: finder, totalizer over the
   change literals, and the telemetry accumulators. *)
type search = {
  finder : Relog.Finder.t;
  card : Sat.Cardinality.t;
  total : int;  (* total weight = totalizer input count *)
  started : float;
  mutable iterations : int;
  mutable blocked : int;  (* non-conformant instances excluded *)
  mutable levels : (int * int) list;  (* (distance, solver calls), reversed *)
}

let start space =
  let finder = Relog.Finder.prepare (Space.bounds space) (Space.formulas space) in
  let trans = Relog.Finder.translation finder in
  let changes = Space.change_literals space trans in
  let inputs = List.concat_map (fun (l, w) -> List.init w (fun _ -> l)) changes in
  let card = Sat.Cardinality.build (Relog.Finder.solver finder) inputs in
  {
    finder;
    card;
    total = List.length inputs;
    started = Sat.Telemetry.now ();
    iterations = 0;
    blocked = 0;
    levels = [];
  }

let step sc k =
  sc.iterations <- sc.iterations + 1;
  (sc.levels <-
     (match sc.levels with
     | (k', n) :: rest when k' = k -> (k', n + 1) :: rest
     | levels -> (k, 1) :: levels));
  Relog.Finder.solve ~assumptions:(Sat.Cardinality.at_most sc.card k) sc.finder

let telemetry sc =
  let fs = Relog.Finder.stats sc.finder in
  {
    Telemetry.backend = "iterative";
    translation = fs.Relog.Finder.translation;
    solver = fs.Relog.Finder.solver;
    solver_calls = fs.Relog.Finder.solves;
    solve_time = fs.Relog.Finder.solve_time;
    distance_levels = List.rev sc.levels;
    blocked_nonconformant = sc.blocked;
    cardinality_inputs = sc.total;
    cardinality_aux_vars = Sat.Cardinality.aux_vars sc.card;
    cardinality_clauses = Sat.Cardinality.aux_clauses sc.card;
    total_time = Sat.Telemetry.now () -. sc.started;
  }

let run ?max_distance space =
  try
    let sc = start space in
    let cap = Option.value ~default:sc.total max_distance in
    let rec at_distance k =
      if k > cap then Ok Cannot_restore
      else
        match step sc k with
        | Relog.Finder.Unsat -> at_distance (k + 1)
        | Relog.Finder.Sat inst -> (
          match Space.decode_targets space inst with
          | Ok repaired ->
            Ok
              (Repaired
                 {
                   repaired;
                   relational_distance = Space.relational_distance space inst;
                   edit_distance = Space.edit_distance space repaired;
                   iterations = sc.iterations;
                   stats = telemetry sc;
                 })
          | Error _ ->
            (* The relational instance passed the encoded constraints
               but the decoded model fails full conformance (the
               encoding approximates multiplicity lower bounds > 1):
               exclude it and keep searching at the same distance. *)
            sc.blocked <- sc.blocked + 1;
            Relog.Finder.block sc.finder;
            at_distance k)
    in
    at_distance 0
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg

let run_all ?max_distance ?(limit = 16) space =
  try
    let sc = start space in
    let cap = Option.value ~default:sc.total max_distance in
    (* Collect every (conformant) instance at distance k; [n] carries
       the count so the limit check is O(1) per iteration. *)
    let collect_at k =
      let rec go acc n =
        if n >= limit then List.rev acc
        else
          match step sc k with
          | Relog.Finder.Unsat -> List.rev acc
          | Relog.Finder.Sat inst -> (
            Relog.Finder.block sc.finder;
            match Space.decode_targets space inst with
            | Error _ ->
              sc.blocked <- sc.blocked + 1;
              go acc n
            | Ok repaired ->
              let r =
                {
                  repaired;
                  relational_distance = Space.relational_distance space inst;
                  edit_distance = Space.edit_distance space repaired;
                  iterations = sc.iterations;
                  stats = telemetry sc;
                }
              in
              go (r :: acc) (n + 1))
      in
      go [] 0
    in
    (* Distinct SAT assignments can decode to identical models (e.g.
       symmetric uses of slack atoms not covered by the symmetry
       chain); deduplicate on a canonical serialization of the decoded
       states, hashed — not pairwise Model.equal over all seen keys. *)
    let dedup repairs =
      let seen = Hashtbl.create 16 in
      List.filter
        (fun (r : success) ->
          let key =
            String.concat "\x00"
              (List.map
                 (fun (p, m) ->
                   Mdl.Ident.name p ^ "\x01" ^ Mdl.Serialize.model_to_string m)
                 r.repaired)
          in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        repairs
    in
    let rec at_distance k =
      if k > cap then Ok []
      else
        match collect_at k with
        | [] -> at_distance (k + 1)
        | repairs ->
          (* [collect_at] also sees instances strictly below k that
             earlier iterations proved absent, so everything returned
             is at the minimal distance. *)
          let final = telemetry sc in
          Ok (List.map (fun r -> { r with stats = final }) (dedup repairs))
    in
    at_distance 0
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg
