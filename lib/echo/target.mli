(** Target-set selection — the paper's transformation shapes (§1, §3).

    A multidirectional specification [F ⊆ M₁ × ... × Mₙ] induces one
    consistency-restoring transformation per non-empty subset Θ of the
    models (the models allowed to change). The paper's catalogue:

    - [→F_FM : CFᵏ → FM] — {!single} on the feature model;
    - [→Fᵢ_CF : FM × CFᵏ⁻¹ → CF] — {!single} on one configuration
      (the only shapes the OMG standard hints at);
    - [→F_CFᵏ : FM → CFᵏ] — {!of_list} over all configurations;
    - [→Fᵢ_FM×CFᵏ⁻¹ : CF → FM × CFᵏ⁻¹] — {!all_but} one
      configuration (the paper's proposed generalisations). *)

type t = Mdl.Ident.Set.t
(** The set of mutable model parameters. *)

val single : string -> t
val of_list : string list -> t
val all_but : params:Mdl.Ident.t list -> string -> t
(** Every parameter except the given one. *)

val validate : params:Mdl.Ident.t list -> t -> (unit, string) result
(** Non-empty and within the declared parameters. *)

val pp : params:Mdl.Ident.t list -> Format.formatter -> t -> unit
(** Renders as the paper's arrow notation, e.g. [CF -> FM x CF]. *)
