(* Per-repair instrumentation roll-up. The JSON value lives in
   [Obs.Json] (one canonical emitter for telemetry, BENCH_*.json and
   the trace sinks); the type is re-exported here so constructors at
   existing call sites keep working. *)

type json = Obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let json_to_string = Obs.Json.to_string

let solver_json (st : Sat.Solver.stats) =
  Obj
    [
      ("decisions", Int st.Sat.Solver.decisions);
      ("propagations", Int st.Sat.Solver.propagations);
      ("conflicts", Int st.Sat.Solver.conflicts);
      ("restarts", Int st.Sat.Solver.restarts);
      ("learnt", Int st.Sat.Solver.learnt);
      ("reduces", Int st.Sat.Solver.reduces);
      ("solves", Int st.Sat.Solver.solves);
      ("solve_time_s", Float st.Sat.Solver.solve_time);
    ]

(* ------------------------------------------------------------------ *)

type t = {
  backend : string;
  jobs : int;
  translation : Relog.Translate.stats;
  solver : Sat.Solver.stats;
  solver_calls : int;
  solve_time_cpu : float;
  solve_time_wall : float;
  distance_levels : (int * int) list;
  blocked_nonconformant : int;
  cardinality_inputs : int;
  cardinality_aux_vars : int;
  cardinality_clauses : int;
  cardinality_saved_vars : int;
  cardinality_saved_clauses : int;
  total_time : float;
}

let to_json t =
  Obj
    [
      ("backend", String t.backend);
      ("jobs", Int t.jobs);
      ( "translation",
        Obj
          [
            ("primary_vars", Int t.translation.Relog.Translate.primary_vars);
            ("vars", Int t.translation.Relog.Translate.vars);
            ("clauses", Int t.translation.Relog.Translate.clauses);
            ("relations", Int t.translation.Relog.Translate.relations);
            ("formulas", Int t.translation.Relog.Translate.formulas);
            ( "translate_time_s",
              Float t.translation.Relog.Translate.translate_time );
          ] );
      ("solver", solver_json t.solver);
      ("solver_calls", Int t.solver_calls);
      (* "solve_time_s" keeps the PR-1 meaning (summed worker effort)
         for schema compatibility; the wall field is new. *)
      ("solve_time_s", Float t.solve_time_cpu);
      ("solve_time_cpu_s", Float t.solve_time_cpu);
      ("solve_time_wall_s", Float t.solve_time_wall);
      ( "distance_levels",
        List
          (List.map
             (fun (d, n) -> Obj [ ("distance", Int d); ("solver_calls", Int n) ])
             t.distance_levels) );
      ("blocked_nonconformant", Int t.blocked_nonconformant);
      ( "cardinality",
        Obj
          [
            ("inputs", Int t.cardinality_inputs);
            ("aux_vars", Int t.cardinality_aux_vars);
            ("clauses", Int t.cardinality_clauses);
            ("saved_vars", Int t.cardinality_saved_vars);
            ("saved_clauses", Int t.cardinality_saved_clauses);
          ] );
      ("total_time_s", Float t.total_time);
    ]

let pp ppf t =
  let tr = t.translation in
  Format.fprintf ppf "@[<v>backend: %s" t.backend;
  if t.jobs > 1 then Format.fprintf ppf " (jobs: %d)" t.jobs;
  Format.fprintf ppf
    "@,translation: %d vars (%d primary), %d clauses, %d relations, %.3f ms"
    tr.Relog.Translate.vars tr.Relog.Translate.primary_vars
    tr.Relog.Translate.clauses tr.Relog.Translate.relations
    (tr.Relog.Translate.translate_time *. 1000.);
  Format.fprintf ppf
    "@,cardinality: %d inputs, %d aux vars, %d clauses"
    t.cardinality_inputs t.cardinality_aux_vars t.cardinality_clauses;
  if t.cardinality_saved_vars > 0 || t.cardinality_saved_clauses > 0 then
    Format.fprintf ppf " (cap saved %d vars, %d clauses)"
      t.cardinality_saved_vars t.cardinality_saved_clauses;
  Format.fprintf ppf "@,solve: %d calls, %.3f ms cpu, %.3f ms wall"
    t.solver_calls
    (t.solve_time_cpu *. 1000.)
    (t.solve_time_wall *. 1000.);
  if t.distance_levels <> [] then begin
    Format.fprintf ppf "@,distance iterations:";
    List.iter
      (fun (d, n) -> Format.fprintf ppf " d=%d:%d" d n)
      t.distance_levels
  end;
  if t.blocked_nonconformant > 0 then
    Format.fprintf ppf "@,blocked non-conformant instances: %d"
      t.blocked_nonconformant;
  Format.fprintf ppf "@,solver: %a" Sat.Solver.pp_stats t.solver;
  Format.fprintf ppf "@,total: %.3f ms@]" (t.total_time *. 1000.)
