(* Per-repair instrumentation roll-up plus a dependency-free JSON
   emitter (no JSON library in the toolchain; the bench driver and CI
   smoke test parse what [json_to_string] emits). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity; clamp to null (never hit in practice) *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6f" f)
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let solver_json (st : Sat.Solver.stats) =
  Obj
    [
      ("decisions", Int st.Sat.Solver.decisions);
      ("propagations", Int st.Sat.Solver.propagations);
      ("conflicts", Int st.Sat.Solver.conflicts);
      ("restarts", Int st.Sat.Solver.restarts);
      ("learnt", Int st.Sat.Solver.learnt);
      ("reduces", Int st.Sat.Solver.reduces);
      ("solves", Int st.Sat.Solver.solves);
      ("solve_time_s", Float st.Sat.Solver.solve_time);
    ]

(* ------------------------------------------------------------------ *)

type t = {
  backend : string;
  jobs : int;
  translation : Relog.Translate.stats;
  solver : Sat.Solver.stats;
  solver_calls : int;
  solve_time : float;
  distance_levels : (int * int) list;
  blocked_nonconformant : int;
  cardinality_inputs : int;
  cardinality_aux_vars : int;
  cardinality_clauses : int;
  cardinality_saved_vars : int;
  cardinality_saved_clauses : int;
  total_time : float;
}

let to_json t =
  Obj
    [
      ("backend", String t.backend);
      ("jobs", Int t.jobs);
      ( "translation",
        Obj
          [
            ("primary_vars", Int t.translation.Relog.Translate.primary_vars);
            ("vars", Int t.translation.Relog.Translate.vars);
            ("clauses", Int t.translation.Relog.Translate.clauses);
            ("relations", Int t.translation.Relog.Translate.relations);
            ("formulas", Int t.translation.Relog.Translate.formulas);
            ( "translate_time_s",
              Float t.translation.Relog.Translate.translate_time );
          ] );
      ("solver", solver_json t.solver);
      ("solver_calls", Int t.solver_calls);
      ("solve_time_s", Float t.solve_time);
      ( "distance_levels",
        List
          (List.map
             (fun (d, n) -> Obj [ ("distance", Int d); ("solver_calls", Int n) ])
             t.distance_levels) );
      ("blocked_nonconformant", Int t.blocked_nonconformant);
      ( "cardinality",
        Obj
          [
            ("inputs", Int t.cardinality_inputs);
            ("aux_vars", Int t.cardinality_aux_vars);
            ("clauses", Int t.cardinality_clauses);
            ("saved_vars", Int t.cardinality_saved_vars);
            ("saved_clauses", Int t.cardinality_saved_clauses);
          ] );
      ("total_time_s", Float t.total_time);
    ]

let pp ppf t =
  let tr = t.translation in
  Format.fprintf ppf "@[<v>backend: %s" t.backend;
  if t.jobs > 1 then Format.fprintf ppf " (jobs: %d)" t.jobs;
  Format.fprintf ppf
    "@,translation: %d vars (%d primary), %d clauses, %d relations, %.3f ms"
    tr.Relog.Translate.vars tr.Relog.Translate.primary_vars
    tr.Relog.Translate.clauses tr.Relog.Translate.relations
    (tr.Relog.Translate.translate_time *. 1000.);
  Format.fprintf ppf
    "@,cardinality: %d inputs, %d aux vars, %d clauses"
    t.cardinality_inputs t.cardinality_aux_vars t.cardinality_clauses;
  if t.cardinality_saved_vars > 0 || t.cardinality_saved_clauses > 0 then
    Format.fprintf ppf " (cap saved %d vars, %d clauses)"
      t.cardinality_saved_vars t.cardinality_saved_clauses;
  Format.fprintf ppf "@,solve: %d calls, %.3f ms" t.solver_calls
    (t.solve_time *. 1000.);
  if t.distance_levels <> [] then begin
    Format.fprintf ppf "@,distance iterations:";
    List.iter
      (fun (d, n) -> Format.fprintf ppf " d=%d:%d" d n)
      t.distance_levels
  end;
  if t.blocked_nonconformant > 0 then
    Format.fprintf ppf "@,blocked non-conformant instances: %d"
      t.blocked_nonconformant;
  Format.fprintf ppf "@,solver: %a" Sat.Solver.pp_stats t.solver;
  Format.fprintf ppf "@,total: %.3f ms@]" (t.total_time *. 1000.)
