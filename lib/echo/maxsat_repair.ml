type outcome = Repair.outcome

let run ?(jobs = 1) ?token space =
  if jobs < 1 then invalid_arg "Maxsat_repair.run: jobs must be >= 1";
  try
    let started = Sat.Telemetry.now () in
    let maxsat = Sat.Maxsat.create () in
    Option.iter
      (fun tok ->
        Parallel.Pool.on_cancel tok (fun () ->
            Sat.Solver.interrupt (Sat.Maxsat.solver maxsat)))
      token;
    let trans =
      Relog.Translate.create ~solver:(Sat.Maxsat.solver maxsat) (Space.bounds space)
    in
    List.iter
      (Relog.Translate.materialize trans)
      (Relog.Bounds.relations (Space.bounds space));
    List.iter (Relog.Translate.assert_formula trans) (Space.formulas space);
    (* Lex-leader SBPs as plain hard clauses: this translation lives
       for one optimization run, so no guard/retirement is needed. The
       fixed set also pins every atom the formulas name, mirroring what
       Finder accumulates on the iterative path. *)
    if Space.use_sbp space then begin
      let fixed =
        List.fold_left
          (fun acc f -> Mdl.Ident.Set.union acc (Relog.Ast.free_atoms f))
          (Space.symmetry_fixed space)
          (Space.formulas space)
      in
      let orbits =
        Relog.Symmetry.orbits ~fixed
          ~respect:(Space.symmetry_respect space)
          (Space.bounds space)
      in
      ignore (Relog.Symmetry.break trans orbits)
    end;
    (* Soft clauses: keep every optional tuple at its original value. *)
    let changes = Space.change_literals space trans in
    List.iter
      (fun (change_lit, w) ->
        Sat.Maxsat.add_soft maxsat ~weight:w [ Sat.Lit.neg change_lit ])
      changes;
    let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 changes in
    let iterations = ref 0 in
    let blocked = ref 0 in
    let telemetry () =
      let counts = Sat.Maxsat.clause_counts maxsat in
      let solver_stats = Sat.Solver.stats (Sat.Maxsat.solver maxsat) in
      {
        (* The MaxSAT descent is inherently sequential (each bound
           depends on the previous model), so [jobs] is recorded but
           adds no workers here; parallelism arrives via the backend
           portfolio racing this against the iterative ladder. *)
        Telemetry.backend = "maxsat";
        jobs;
        translation = Relog.Translate.stats trans;
        solver = solver_stats;
        solver_calls = solver_stats.Sat.Solver.solves;
        (* Sequential descent on one domain: summed effort = elapsed. *)
        solve_time_cpu = solver_stats.Sat.Solver.solve_time;
        solve_time_wall = solver_stats.Sat.Solver.solve_time;
        distance_levels = [];
        blocked_nonconformant = !blocked;
        cardinality_inputs = total_weight;
        cardinality_aux_vars = counts.Sat.Maxsat.aux_vars;
        cardinality_clauses = counts.Sat.Maxsat.aux;
        cardinality_saved_vars = counts.Sat.Maxsat.saved_vars;
        cardinality_saved_clauses = counts.Sat.Maxsat.saved_clauses;
        total_time = Sat.Telemetry.now () -. started;
      }
    in
    let rec solve () =
      incr iterations;
      match
        Obs.Trace.with_span ~name:"solve"
          ~args:(fun () ->
            [
              ("backend", Obs.Json.String "maxsat");
              ("iteration", Obs.Json.Int !iterations);
            ])
          (fun () -> Sat.Maxsat.solve maxsat)
      with
      | Sat.Maxsat.Hard_unsat -> Ok Repair.Cannot_restore
      | Sat.Maxsat.Optimum _ -> (
        let inst = Relog.Translate.decode_with trans (Sat.Maxsat.value maxsat) in
        match Space.decode_targets space inst with
        | Ok repaired ->
          Ok
            (Repair.Repaired
               {
                 Repair.repaired;
                 relational_distance = Space.relational_distance space inst;
                 edit_distance = Space.edit_distance space repaired;
                 iterations = !iterations;
                 stats = telemetry ();
               })
        | Error _ ->
          (* Conformance approximation: exclude this instance (as a
             hard clause) and re-optimize. *)
          incr blocked;
          let clause =
            Relog.Translate.fold_primaries trans
              (fun _ _ v acc ->
                let l =
                  if Sat.Maxsat.value maxsat v then Sat.Lit.neg_of v
                  else Sat.Lit.pos v
                in
                l :: acc)
              []
          in
          Sat.Maxsat.add_hard maxsat clause;
          solve ())
    in
    (try solve () with Sat.Solver.Interrupted -> Error "interrupted")
  with
  | Relog.Translate.Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg
