module Ident = Mdl.Ident
module TS = Relog.Rel.Tupleset

type t = {
  enc : Qvtr.Encode.t;
  sem : Qvtr.Semantics.t;
  tgts : Target.t;
  original : Relog.Instance.t;
  bnds : Relog.Bounds.t;
  fmls : Relog.Ast.formula list;
  weights : int Ident.Map.t;  (* param -> weight *)
  originals : (Ident.t * Mdl.Model.t) list;
  sbp : bool;  (* general lex-leader SBPs instead of the slack chain *)
}

(* Relation names are namespaced "<param>$..."; recover the parameter. *)
let param_of_rel r =
  match String.index_opt (Ident.name r) '$' with
  | None -> None
  | Some i -> Some (Ident.make (String.sub (Ident.name r) 0 i))

let build ?mode ?unroll ?(slack_objects = 2) ?(extra_values = [])
    ?(model_weights = []) ?(sbp = true) ~transformation ~metamodels ~models
    ~targets () =
  let ( let* ) = Result.bind in
  let params =
    List.map
      (fun (p : Qvtr.Ast.param) -> p.Qvtr.Ast.par_name)
      transformation.Qvtr.Ast.t_params
  in
  let* () = Target.validate ~params targets in
  let* info =
    match Qvtr.Typecheck.check transformation ~metamodels with
    | Ok info -> Ok info
    | Error errs ->
      Error
        (String.concat "; "
           (List.map (fun e -> Format.asprintf "%a" Qvtr.Typecheck.pp_error e) errs))
  in
  let* enc =
    Qvtr.Encode.create ~transformation ~metamodels ~models ~extra_values
      ~slack_objects ()
  in
  try
    let sem = Qvtr.Semantics.create ?mode ?unroll enc info in
    let consistency = Qvtr.Semantics.consistency_formula sem in
    (* With the general symmetry pass on, the hand-rolled slack chain
       is dropped: its formulas name the slack atoms, which would pin
       them and leave the analysis no orbits. The lex-leader SBPs the
       repair layer asserts subsume it. *)
    let structural =
      List.concat_map
        (fun p -> Qvtr.Encode.structural_formulas ~symmetry:(not sbp) enc ~param:p)
        (Ident.Set.elements targets)
    in
    let weights =
      List.fold_left
        (fun acc p ->
          let w =
            match List.find_opt (fun (q, _) -> Ident.equal q p) model_weights with
            | Some (_, w) -> w
            | None -> 1
          in
          if w <= 0 then invalid_arg "Space.build: weights must be positive";
          Ident.Map.add p w acc)
        Ident.Map.empty params
    in
    Ok
      {
        enc;
        sem;
        tgts = targets;
        original = Qvtr.Encode.check_instance enc;
        bnds = Qvtr.Encode.bounds enc ~targets;
        fmls = consistency :: structural;
        weights;
        originals = models;
        sbp;
      }
  with
  | Qvtr.Semantics.Compile_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let encoding s = s.enc

let directional_formulas s =
  List.map
    (fun (r, d, f) -> (r.Qvtr.Ast.r_name, d, f))
    (Qvtr.Semantics.top_formulas s.sem)

let structural s =
  List.concat_map
    (fun p -> Qvtr.Encode.structural_formulas ~symmetry:(not s.sbp) s.enc ~param:p)
    (Ident.Set.elements s.tgts)
let targets s = s.tgts
let use_sbp s = s.sbp

(* Atoms the symmetry analysis may permute: the target models' object
   atoms (existing and slack). Everything else — value atoms, whose
   identity is observable in a repair menu ("attr = 5" and "attr = 7"
   are different repairs, not isomorphic ones), and frozen models'
   objects — stays fixed. *)
let symmetry_fixed s =
  let candidates =
    List.fold_left
      (fun acc p ->
        let acc =
          List.fold_left
            (fun acc a -> Ident.Set.add a acc)
            acc
            (Qvtr.Encode.slack_atom_names s.enc p)
        in
        Mdl.Model.fold_objects
          (fun id _ acc -> Ident.Set.add (Qvtr.Encode.obj_atom_name p id) acc)
          (Qvtr.Encode.model_of_param s.enc p)
          acc)
      Ident.Set.empty
      (Ident.Set.elements s.tgts)
  in
  List.fold_left
    (fun acc a -> if Ident.Set.mem a candidates then acc else Ident.Set.add a acc)
    Ident.Set.empty
    (Relog.Rel.Universe.atoms (Qvtr.Encode.universe s.enc))

(* Tuplesets every permutation must additionally preserve: the target
   relations' original values. Without them, a permutation could move
   an instance to one at a different relational distance from the
   original, and the ladder's "UNSAT at level l" would no longer prove
   there is no repair at distance l. Frozen relations are exactly
   bound, so preserving their bounds already preserves them. *)
let symmetry_respect s =
  List.filter_map
    (fun r ->
      match param_of_rel r with
      | Some p when Ident.Set.mem p s.tgts ->
        Some (Relog.Instance.get s.original r)
      | _ -> None)
    (Relog.Bounds.relations s.bnds)
let formulas s = s.fmls
let bounds s = s.bnds
let params s =
  List.map
    (fun (p : Qvtr.Ast.param) -> p.Qvtr.Ast.par_name)
    (Qvtr.Encode.transformation s.enc).Qvtr.Ast.t_params

let weight_of_rel s r =
  match param_of_rel r with
  | Some p -> (
    match Ident.Map.find_opt p s.weights with Some w -> Some w | None -> None)
  | None -> None

let change_literals s trans =
  Relog.Translate.fold_primaries trans
    (fun r tuple v acc ->
      match weight_of_rel s r with
      | None -> acc  (* value relations etc. — never primary in practice *)
      | Some w ->
        let originally = TS.mem tuple (Relog.Instance.get s.original r) in
        let lit = if originally then Sat.Lit.neg_of v else Sat.Lit.pos v in
        (lit, w) :: acc)
    []

let total_weight s trans =
  List.fold_left (fun acc (_, w) -> acc + w) 0 (change_literals s trans)

let decode_targets s inst =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (p, original) :: rest ->
      if not (Ident.Set.mem p s.tgts) then go ((p, original) :: acc) rest
      else (
        match Qvtr.Encode.decode_model s.enc inst ~param:p with
        | Error msg -> Error msg
        | Ok m ->
          let violations = Mdl.Conformance.check m in
          if violations <> [] then
            Error
              (Format.asprintf "decoded %a does not conform: %a" Ident.pp p
                 Mdl.Conformance.pp_report violations)
          else go ((p, m) :: acc) rest)
  in
  go [] s.originals

let relational_distance s inst =
  List.fold_left
    (fun acc r ->
      match (param_of_rel r, Relog.Bounds.get s.bnds r) with
      | Some p, Some _ when Ident.Set.mem p s.tgts ->
        let w = Option.value ~default:1 (Ident.Map.find_opt p s.weights) in
        let a = Relog.Instance.get s.original r in
        let b = Relog.Instance.get inst r in
        let sym = TS.cardinal (TS.diff a b) + TS.cardinal (TS.diff b a) in
        acc + (w * sym)
      | _ -> acc)
    0
    (Relog.Bounds.relations s.bnds)

let edit_distance s repaired =
  List.fold_left
    (fun acc (p, original) ->
      if Ident.Set.mem p s.tgts then
        match List.find_opt (fun (q, _) -> Ident.equal q p) repaired with
        | Some (_, m) -> acc + Mdl.Distance.delta original m
        | None -> acc
      else acc)
    0 s.originals
