(** Iterative least-change repair (Echo, FASE'13).

    Searches for consistent instances at increasing relational
    distance from the original models: one shared SAT encoding, a
    totalizer over the change literals, and per-iteration cardinality
    assumptions [distance ≤ k] for k = 0, 1, 2, ... The first
    satisfiable bound yields a minimal repair; exhausting the total
    weight proves the target set cannot restore consistency (the
    situation §3 warns about for single-target updates). *)

type success = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
      (** full binding: targets replaced, others as given *)
  relational_distance : int;
  edit_distance : int;
  iterations : int;  (** number of solver calls *)
  stats : Telemetry.t;
      (** instrumentation roll-up for the run; for {!run_all} every
          returned repair carries the cumulative stats of the whole
          enumeration *)
}

type outcome =
  | Repaired of success
  | Cannot_restore
      (** no consistent instance exists within the bounded space for
          this target set *)

val run :
  ?max_distance:int ->
  ?jobs:int ->
  ?token:Parallel.Pool.token ->
  Space.t ->
  (outcome, string) result
(** [max_distance] caps the search (default: total weight of the
    space's change literals) — the cap also k-bounds the totalizer
    encoding. [Error] on internal decode failures.

    [jobs] (default 1) parallelises the distance ladder: a window of
    levels above the proven floor is probed speculatively on worker
    domains, each on a {!Sat.Solver.clone} of the shared encoding.
    Both the worker count and the window width are [jobs] capped by
    the hardware core count (override: [MDQVTR_WORKERS]) — a probe
    that cannot overlap any other work in wall-clock is pure cost, it
    skips the incremental warm-up consecutive levels share.
    The committed relational distance is the exact minimum for every
    [jobs] value — minimality is decided by level, not arrival order;
    an UNSAT probe at level [l] retires all levels [<= l] at once.
    With several equally-minimal repairs the particular witness model
    may depend on the schedule; {!run_all} enumerates the full
    jobs-invariant set.

    [token] supports cooperative cancellation (backend portfolio):
    when cancelled, solvers are interrupted and the result is
    [Error "interrupted"]. *)

val run_all :
  ?max_distance:int ->
  ?limit:int ->
  ?jobs:int ->
  ?split_after:float ->
  ?token:Parallel.Pool.token ->
  Space.t ->
  (success list, string) result
(** All distinct minimal repairs (every consistent instance at the
    optimal distance), up to [limit] (default 16), in a canonical
    deterministic order (sorted on the serialized repair, independent
    of discovery order and of [jobs]). The empty list means
    consistency cannot be restored. This realises the workflow the
    paper's §4 sketches for the multidirectional Echo: "when
    inconsistencies are found, [users] select which models are to be
    updated" — and here, also which of the equally-minimal repairs to
    take.

    With [jobs >= 2] the minimal distance is found by the parallel
    ladder of {!run} and the enumeration is sharded across workers by
    disjoint sign-pattern cubes over the first change literals, with
    purely clone-local blocking clauses, merged through the hash-set
    dedup. The sharding is adaptive: the per-cube cost is measured as
    cubes run, and a cube that has held its worker for more than
    [split_after] wall seconds (default 25ms) while another worker is
    starved is split in two — half goes back to the shared queue —
    so skewed initial partitions rebalance instead of serialising the
    tail. Splitting never changes the returned set (a split cube's
    halves cover exactly the cube). The returned set equals the
    serial one whenever the number of distinct minimal repairs is at
    most [limit] (each shard applies [limit] locally before the
    global cap, so an overfull result may select a different — still
    canonical-least — subset).

    Both [run] and [run_all] degrade [jobs] to 1 when called from
    inside a pool worker (a nested parallel region — e.g. the
    portfolio's iterative lane) rather than oversubscribe the cores
    the enclosing region already owns. *)
