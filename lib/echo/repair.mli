(** Iterative least-change repair (Echo, FASE'13).

    Searches for consistent instances at increasing relational
    distance from the original models: one shared SAT encoding, a
    totalizer over the change literals, and per-iteration cardinality
    assumptions [distance ≤ k] for k = 0, 1, 2, ... The first
    satisfiable bound yields a minimal repair; exhausting the total
    weight proves the target set cannot restore consistency (the
    situation §3 warns about for single-target updates). *)

type success = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
      (** full binding: targets replaced, others as given *)
  relational_distance : int;
  edit_distance : int;
  iterations : int;  (** number of solver calls *)
  stats : Telemetry.t;
      (** instrumentation roll-up for the run; for {!run_all} every
          returned repair carries the cumulative stats of the whole
          enumeration *)
}

type outcome =
  | Repaired of success
  | Cannot_restore
      (** no consistent instance exists within the bounded space for
          this target set *)

val run : ?max_distance:int -> Space.t -> (outcome, string) result
(** [max_distance] caps the search (default: total weight of the
    space's change literals). [Error] on internal decode failures. *)

val run_all :
  ?max_distance:int -> ?limit:int -> Space.t -> (success list, string) result
(** All distinct minimal repairs (every consistent instance at the
    optimal distance), up to [limit] (default 16). The empty list
    means consistency cannot be restored. This realises the workflow
    the paper's §4 sketches for the multidirectional Echo: "when
    inconsistencies are found, [users] select which models are to be
    updated" — and here, also which of the equally-minimal repairs to
    take. *)
