type backend =
  | Iterative
  | Maxsat
  | Portfolio

type enforce_result = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  relational_distance : int;
  edit_distance : int;
  iterations : int;
  backend : backend;
  stats : Telemetry.t;
}

type enforce_outcome =
  | Enforced of enforce_result
  | Already_consistent
  | Cannot_restore

let check = Qvtr.Check.run

let backend_name = function
  | Iterative -> "iterative"
  | Maxsat -> "maxsat"
  | Portfolio -> "portfolio"

let m_enforcements = Obs.Metrics.counter "echo.engine.enforcements"

(* Portfolio accounting. The win counters only move when a race
   actually runs: [enforce ~backend:Portfolio] degrades to the plain
   ladder when [jobs < 2] (and in nested parallel regions), and no
   bench or test drove a real race for several releases — which made
   the two zero win counters in BENCH_2..4 look like broken
   accounting. [portfolio_races] separates the two failure modes for
   good: races = 0 means nobody raced; races > 0 with zero wins means
   both lanes failed. *)
let m_portfolio_races = Obs.Metrics.counter "echo.engine.portfolio_races"
let m_iterative_wins = Obs.Metrics.counter "echo.engine.portfolio_iterative_wins"
let m_maxsat_wins = Obs.Metrics.counter "echo.engine.portfolio_maxsat_wins"

(* Race the iterative ladder against the MaxSAT descent on two pool
   lanes; the first usable outcome wins and the loser is cancelled
   (its solver interrupted). Both backends compute the same minimal
   distance, so the result is deterministic even though the winning
   lane is not. Both futures are awaited before returning — no work
   leaks past the call. *)
let race_portfolio ?max_distance space =
  Obs.Trace.with_span ~name:"portfolio" (fun () ->
  Obs.Metrics.incr m_portfolio_races;
  let pool = Parallel.Pool.global ~jobs:2 in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let published = ref [] in  (* (lane, result) in completion order *)
  let publish tag r =
    Mutex.lock mu;
    published := !published @ [ (tag, r) ];
    Condition.signal cond;
    Mutex.unlock mu
  in
  let submit tag lane =
    Parallel.Pool.submit pool (fun token ->
        let r =
          Obs.Trace.with_span ~name:("portfolio." ^ backend_name tag) (fun () ->
              try lane token with e -> Error (Printexc.to_string e))
        in
        publish tag r)
  in
  let fi =
    submit Iterative (fun token -> Repair.run ?max_distance ~jobs:1 ~token space)
  in
  let fm = submit Maxsat (fun token -> Maxsat_repair.run ~token space) in
  (* First usable outcome wins; if a lane fails, wait out the other. *)
  let winner =
    Mutex.lock mu;
    let rec wait () =
      match List.find_opt (fun (_, r) -> Result.is_ok r) !published with
      | Some w -> w
      | None ->
        if List.length !published >= 2 then List.hd !published
        else begin
          Condition.wait cond mu;
          wait ()
        end
    in
    let w = wait () in
    Mutex.unlock mu;
    w
  in
  Obs.Trace.instant "portfolio.winner"
    ~args:(fun () -> [ ("lane", Obs.Json.String (backend_name (fst winner))) ]);
  (match winner with
  | Iterative, Ok _ -> Obs.Metrics.incr m_iterative_wins
  | Maxsat, Ok _ -> Obs.Metrics.incr m_maxsat_wins
  | _ -> ());
  Obs.Trace.instant "portfolio.cancel_loser";
  Parallel.Pool.cancel fi;
  Parallel.Pool.cancel fm;
  ignore (Parallel.Pool.result fi);
  ignore (Parallel.Pool.result fm);
  match winner with
  | tag, Ok outcome -> Ok (outcome, tag)
  | _, Error e -> Error e)

let enforce ?(backend = Iterative) ?mode ?slack_objects ?extra_values
    ?model_weights ?max_distance ?(jobs = 1) ?sbp transformation ~metamodels
    ~models ~targets =
  if jobs < 1 then invalid_arg "Engine.enforce: jobs must be >= 1";
  Obs.Metrics.incr m_enforcements;
  Obs.Trace.with_span ~name:"enforce"
    ~args:(fun () ->
      [
        ("backend", Obs.Json.String (backend_name backend));
        ("jobs", Obs.Json.Int jobs);
      ])
  @@ fun () ->
  let ( let* ) = Result.bind in
  let* report =
    Obs.Trace.with_span ~name:"check" (fun () ->
        Qvtr.Check.run ?mode transformation ~metamodels ~models)
  in
  if report.Qvtr.Check.consistent then Ok Already_consistent
  else
    let* space =
      Obs.Trace.with_span ~name:"space.build" (fun () ->
          Space.build ?mode ?slack_objects ?extra_values ?model_weights ?sbp
            ~transformation ~metamodels ~models ~targets ())
    in
    let* outcome, winner =
      match backend with
      | Iterative ->
        Result.map (fun o -> (o, Iterative)) (Repair.run ?max_distance ~jobs space)
      | Maxsat -> Result.map (fun o -> (o, Maxsat)) (Maxsat_repair.run ~jobs space)
      | Portfolio ->
        if jobs < 2 || Parallel.Pool.in_worker () then
          (* A portfolio needs two lanes of its own; degrade to the
             ladder when the budget is one job or when already running
             inside a pool worker (racing from a nested region would
             oversubscribe — and can stall behind — the outer one). *)
          Result.map (fun o -> (o, Iterative)) (Repair.run ?max_distance ~jobs space)
        else race_portfolio ?max_distance space
    in
    match outcome with
    | Repair.Cannot_restore -> Ok Cannot_restore
    | Repair.Repaired r ->
      Ok
        (Enforced
           {
             repaired = r.Repair.repaired;
             relational_distance = r.Repair.relational_distance;
             edit_distance = r.Repair.edit_distance;
             iterations = r.Repair.iterations;
             backend = winner;
             stats = r.Repair.stats;
           })

let enforce_all ?(limit = 16) ?mode ?slack_objects ?extra_values ?model_weights
    ?max_distance ?(jobs = 1) ?split_after ?sbp transformation ~metamodels
    ~models ~targets =
  if jobs < 1 then invalid_arg "Engine.enforce_all: jobs must be >= 1";
  Obs.Metrics.incr m_enforcements;
  Obs.Trace.with_span ~name:"enforce_all"
    ~args:(fun () -> [ ("jobs", Obs.Json.Int jobs) ])
  @@ fun () ->
  let ( let* ) = Result.bind in
  let* report =
    Obs.Trace.with_span ~name:"check" (fun () ->
        Qvtr.Check.run ?mode transformation ~metamodels ~models)
  in
  if report.Qvtr.Check.consistent then Ok [ Already_consistent ]
  else
    let* space =
      Obs.Trace.with_span ~name:"space.build" (fun () ->
          Space.build ?mode ?slack_objects ?extra_values ?model_weights ?sbp
            ~transformation ~metamodels ~models ~targets ())
    in
    let* repairs = Repair.run_all ?max_distance ~limit ~jobs ?split_after space in
    match repairs with
    | [] -> Ok [ Cannot_restore ]
    | rs ->
      Ok
        (List.map
           (fun (r : Repair.success) ->
             Enforced
               {
                 repaired = r.Repair.repaired;
                 relational_distance = r.Repair.relational_distance;
                 edit_distance = r.Repair.edit_distance;
                 iterations = r.Repair.iterations;
                 backend = Iterative;
                 stats = r.Repair.stats;
               })
           rs)

type diagnosis = {
  d_relation : Mdl.Ident.t;
  d_direction : Qvtr.Ast.dependency;
  d_satisfiable : bool;
}

let diagnose ?mode ?slack_objects ?extra_values transformation ~metamodels
    ~models ~targets =
  let ( let* ) = Result.bind in
  (* Diagnosis runs one satisfiability probe per directional formula
     and never enumerates, so SBPs buy nothing; keep the legacy slack
     chain so the probes see the same structural formulas as before. *)
  let* space =
    Space.build ?mode ?slack_objects ?extra_values ~sbp:false ~transformation
      ~metamodels ~models ~targets ()
  in
  let structural = Space.structural space in
  Ok
    (List.map
       (fun (rel, dep, formula) ->
         let finder =
           Relog.Finder.prepare (Space.bounds space) (formula :: structural)
         in
         let satisfiable =
           match Relog.Finder.solve finder with
           | Relog.Finder.Sat _ -> true
           | Relog.Finder.Unsat -> false
         in
         { d_relation = rel; d_direction = dep; d_satisfiable = satisfiable })
       (Space.directional_formulas space))

let pp_diagnosis ppf d =
  Format.fprintf ppf "%a [%a]: %s" Mdl.Ident.pp d.d_relation Qvtr.Ast.pp_dependency
    d.d_direction
    (if d.d_satisfiable then "satisfiable by the targets"
     else "UNSATISFIABLE by the targets")

let pp_outcome ppf = function
  | Already_consistent -> Format.pp_print_string ppf "already consistent"
  | Cannot_restore ->
    Format.pp_print_string ppf "cannot restore consistency with this target set"
  | Enforced r ->
    Format.fprintf ppf "repaired at relational distance %d (edit distance %d, %d solver iterations)"
      r.relational_distance r.edit_distance r.iterations
