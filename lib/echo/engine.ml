type backend =
  | Iterative
  | Maxsat

type enforce_result = {
  repaired : (Mdl.Ident.t * Mdl.Model.t) list;
  relational_distance : int;
  edit_distance : int;
  iterations : int;
  backend : backend;
  stats : Telemetry.t;
}

type enforce_outcome =
  | Enforced of enforce_result
  | Already_consistent
  | Cannot_restore

let check = Qvtr.Check.run

let enforce ?(backend = Iterative) ?mode ?slack_objects ?extra_values
    ?model_weights ?max_distance transformation ~metamodels ~models ~targets =
  let ( let* ) = Result.bind in
  let* report = Qvtr.Check.run ?mode transformation ~metamodels ~models in
  if report.Qvtr.Check.consistent then Ok Already_consistent
  else
    let* space =
      Space.build ?mode ?slack_objects ?extra_values ?model_weights
        ~transformation ~metamodels ~models ~targets ()
    in
    let* outcome =
      match backend with
      | Iterative -> Repair.run ?max_distance space
      | Maxsat -> Maxsat_repair.run space
    in
    match outcome with
    | Repair.Cannot_restore -> Ok Cannot_restore
    | Repair.Repaired r ->
      Ok
        (Enforced
           {
             repaired = r.Repair.repaired;
             relational_distance = r.Repair.relational_distance;
             edit_distance = r.Repair.edit_distance;
             iterations = r.Repair.iterations;
             backend;
             stats = r.Repair.stats;
           })

let enforce_all ?(limit = 16) ?mode ?slack_objects ?extra_values ?model_weights
    ?max_distance transformation ~metamodels ~models ~targets =
  let ( let* ) = Result.bind in
  let* report = Qvtr.Check.run ?mode transformation ~metamodels ~models in
  if report.Qvtr.Check.consistent then Ok [ Already_consistent ]
  else
    let* space =
      Space.build ?mode ?slack_objects ?extra_values ?model_weights
        ~transformation ~metamodels ~models ~targets ()
    in
    let* repairs = Repair.run_all ?max_distance ~limit space in
    match repairs with
    | [] -> Ok [ Cannot_restore ]
    | rs ->
      Ok
        (List.map
           (fun (r : Repair.success) ->
             Enforced
               {
                 repaired = r.Repair.repaired;
                 relational_distance = r.Repair.relational_distance;
                 edit_distance = r.Repair.edit_distance;
                 iterations = r.Repair.iterations;
                 backend = Iterative;
                 stats = r.Repair.stats;
               })
           rs)

type diagnosis = {
  d_relation : Mdl.Ident.t;
  d_direction : Qvtr.Ast.dependency;
  d_satisfiable : bool;
}

let diagnose ?mode ?slack_objects ?extra_values transformation ~metamodels
    ~models ~targets =
  let ( let* ) = Result.bind in
  let* space =
    Space.build ?mode ?slack_objects ?extra_values ~transformation ~metamodels
      ~models ~targets ()
  in
  let structural = Space.structural space in
  Ok
    (List.map
       (fun (rel, dep, formula) ->
         let finder =
           Relog.Finder.prepare (Space.bounds space) (formula :: structural)
         in
         let satisfiable =
           match Relog.Finder.solve finder with
           | Relog.Finder.Sat _ -> true
           | Relog.Finder.Unsat -> false
         in
         { d_relation = rel; d_direction = dep; d_satisfiable = satisfiable })
       (Space.directional_formulas space))

let pp_diagnosis ppf d =
  Format.fprintf ppf "%a [%a]: %s" Mdl.Ident.pp d.d_relation Qvtr.Ast.pp_dependency
    d.d_direction
    (if d.d_satisfiable then "satisfiable by the targets"
     else "UNSATISFIABLE by the targets")

let pp_outcome ppf = function
  | Already_consistent -> Format.pp_print_string ppf "already consistent"
  | Cannot_restore ->
    Format.pp_print_string ppf "cannot restore consistency with this target set"
  | Enforced r ->
    Format.fprintf ppf "repaired at relational distance %d (edit distance %d, %d solver iterations)"
      r.relational_distance r.edit_distance r.iterations
