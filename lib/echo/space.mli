(** Construction of the repair search space shared by both enforcement
    backends.

    Builds, from a transformation and a target set: the relational
    encoding, the consistency formula (all top directional checks),
    the structural (conformance) constraints of every mutable model,
    and the {e change literals} — one per primary variable, true
    exactly when the repaired instance differs from the original on
    that tuple. The total weight of true change literals is the
    relational distance Δ that both backends minimize (Echo's metric:
    symmetric difference of the relational encodings). *)

type t

val build :
  ?mode:Qvtr.Semantics.mode ->
  ?unroll:int ->
  ?slack_objects:int ->
  ?extra_values:Mdl.Value.t list ->
  ?model_weights:(Mdl.Ident.t * int) list ->
  ?sbp:bool ->
  transformation:Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  targets:Target.t ->
  unit ->
  (t, string) result
(** [model_weights] prioritises models in the aggregated distance
    (default 1 each — the paper's summed aggregation; other weights
    realise the prioritisation it leaves as future work).

    [sbp] (default [true]) selects the general bounds-level symmetry
    analysis ({!Relog.Symmetry}): the structural formulas omit the
    hand-rolled slack-symmetry chain (which would pin the slack atoms)
    and the repair backends instead assert lex-leader predicates for
    the orbits of {!symmetry_fixed}/{!symmetry_respect}. With [sbp]
    false the legacy slack chain is kept and no SBPs are emitted. *)

val encoding : t -> Qvtr.Encode.t

val directional_formulas :
  t -> (Mdl.Ident.t * Qvtr.Ast.dependency * Relog.Ast.formula) list
(** The individual top directional checks (relation, dependency,
    compiled formula) — used by the diagnosis of unrepairable target
    sets. *)

val structural : t -> Relog.Ast.formula list
(** Only the structural (conformance) constraints of the mutable
    models. *)

val targets : t -> Target.t

val use_sbp : t -> bool
(** Whether this space was built for the general symmetry pass. *)

val symmetry_fixed : t -> Mdl.Ident.Set.t
(** Atoms the symmetry analysis must not permute: everything except
    the target models' object and slack atoms. Value atoms in
    particular are fixed — their identity is observable in the repair
    menu. *)

val symmetry_respect : t -> Relog.Rel.Tupleset.t list
(** The original instance's target-relation tuplesets. Permutations
    respecting them leave the relational distance of every instance
    unchanged, which keeps the distance ladder sound under SBPs. *)

val formulas : t -> Relog.Ast.formula list
(** Consistency plus structural constraints. *)

val bounds : t -> Relog.Bounds.t
val params : t -> Mdl.Ident.t list

val change_literals : t -> Relog.Translate.t -> (Sat.Lit.t * int) list
(** For a translation over {!bounds}: one (literal, weight) per
    primary variable; the literal is true iff the tuple's membership
    differs from the original models'. *)

val total_weight : t -> Relog.Translate.t -> int

val decode_targets :
  t -> Relog.Instance.t -> ((Mdl.Ident.t * Mdl.Model.t) list, string) result
(** Decoded (and conformance-checked) target models; non-target models
    are returned unchanged. [Error] when a decoded model does not
    conform (the caller should block the instance and continue). *)

val relational_distance : t -> Relog.Instance.t -> int
(** Weighted symmetric difference between an instance and the original
    encoding, over the target models' relations. *)

val edit_distance : t -> (Mdl.Ident.t * Mdl.Model.t) list -> int
(** Structural edit distance ({!Mdl.Distance}) summed over target
    models, between the originals and the given repaired binding. *)
